// Deterministic chaos suite: a seeded nemesis schedule (drops,
// partitions, isolation, leader crashes, forced suspicion sweeps, epoch
// bumps, live migrations) runs against a replicated cluster while a
// skewed multi-client workload — YCSB-style read/write/RMW mixes plus a
// long-running declared-read-only scanner on the follower-read path —
// hammers it. Afterwards the harness heals everything and certifies the
// run: every key still readable (a lost acknowledged commit surfaces as
// a timestamp-order violation), no key duplicated or dropped by
// migration, the full recorded history MVSG-serializable, and the
// faults provably injected (drop and takeover counters moved).
//
// Every scenario is replayable: the schedule is a pure function of the
// seed, and a failure prints the exact repro command
//   chaos_test --seed=N --transport=sim|tcp
// which this binary's main() accepts to re-run that one scenario.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/cluster.hpp"
#include "sync/clock.hpp"
#include "txbench/driver.hpp"
#include "txbench/nemesis.hpp"
#include "txbench/workload.hpp"
#include "verify/mvsg_oracle.hpp"

namespace mvtl {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kKeySpace = 96;
constexpr std::size_t kGroups = 2;
constexpr std::size_t kReplicationFactor = 3;
constexpr std::size_t kRwClients = 3;

struct ChaosParams {
  std::uint64_t seed = 1;
  TransportKind transport = TransportKind::kSim;
  std::size_t steps = 8;
};

struct ChaosOutcome {
  bool ok = true;
  std::string failure;   ///< first failed probe, empty when ok
  std::string schedule;  ///< canonical schedule text (describe())
  NemesisReport report;
  std::uint64_t committed = 0;     ///< read-write workload commits
  std::uint64_t ro_committed = 0;  ///< read-only scanner commits
  std::uint64_t dropped = 0;       ///< transport-level dropped messages
  std::uint64_t takeovers = 0;     ///< sealed leadership changes
};

std::string repro_command(const ChaosParams& params) {
  return std::string("chaos_test --seed=") + std::to_string(params.seed) +
         " --transport=" + transport_kind_name(params.transport);
}

ClusterConfig chaos_config(TransportKind transport,
                           HistoryRecorder* recorder) {
  ClusterConfig config;
  config.servers = kGroups;
  config.replication_factor = kReplicationFactor;  // 6 physical servers
  config.transport = transport;
  config.server_threads = 2;
  config.net = NetProfile::instant();
  config.follower_reads = true;
  config.mvtil_delta_ticks = 50'000;
  config.lock_timeout = std::chrono::microseconds{5'000};
  // Short suspicion window: takeovers complete inside one pause slot.
  config.suspect_timeout = std::chrono::milliseconds{150};
  config.floor_lag_ticks = 64;  // follower reads stay fresh
  config.key_space = kKeySpace;
  config.clock = std::make_shared<LogicalClock>(1'000);
  config.recorder = recorder;
  return config;
}

/// First live server of group `g` that believes it leads (after
/// await_leaders there is one).
ShardServer* leader_of(Cluster& cluster, std::size_t g) {
  const std::size_t rf = cluster.replication_factor();
  for (std::size_t r = 0; r < rf; ++r) {
    ShardServer& server = cluster.server(g * rf + r);
    if (!server.crashed() && server.group_info().leading) return &server;
  }
  return nullptr;
}

/// Writes every key of [0, key_space) once, so the end-state key-count
/// probe has an exact expectation and every read hits a real version.
bool preload(TransactionalStore& client, std::uint64_t key_space) {
  for (std::uint64_t k = 0; k < key_space; k += 8) {
    TxSpec spec;
    for (std::uint64_t i = k; i < k + 8 && i < key_space; ++i) {
      spec.push_back(Op{Op::Kind::kWrite, make_key(i),
                        "init-" + std::to_string(i)});
    }
    bool ok = false;
    for (int attempt = 0; attempt < 50 && !ok; ++attempt) {
      ok = execute_tx(client, spec, /*process=*/90).committed();
      if (!ok) std::this_thread::sleep_for(2ms);
    }
    if (!ok) return false;
  }
  return true;
}

/// Duplicate/lost-key probe: after migrations the per-group leaders'
/// key counts must sum to exactly key_space — a key duplicated across
/// groups pushes the sum over, a dropped range under. Polls briefly so
/// a just-sealed leader can finish replaying its log.
::testing::AssertionResult leaders_hold_exactly(Cluster& cluster,
                                                std::uint64_t key_space) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  std::uint64_t sum = 0;
  while (true) {
    sum = 0;
    bool all_led = true;
    for (std::size_t g = 0; g < cluster.group_count(); ++g) {
      ShardServer* leader = leader_of(cluster, g);
      if (leader == nullptr) {
        all_led = false;
        break;
      }
      sum += leader->handle_stats().keys;
    }
    if (all_led && sum == key_space) return ::testing::AssertionSuccess();
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(5ms);
  }
  return ::testing::AssertionFailure()
         << "group leaders hold " << sum << " keys, expected " << key_space
         << " (duplicate or dropped keys after migration)";
}

/// Runs one full chaos scenario: preload, concurrent workload, nemesis
/// schedule, heal, then the oracle + invariant probes.
ChaosOutcome run_chaos(const ChaosParams& params) {
  ChaosOutcome outcome;
  const NemesisTopology topology{kGroups, kReplicationFactor, kKeySpace};
  NemesisOptions options;
  options.seed = params.seed;
  options.steps = params.steps;
  FaultSchedule schedule = generate_schedule(options, topology);
  outcome.schedule = schedule.describe();

  auto fail = [&outcome](std::string why) {
    outcome.ok = false;
    if (outcome.failure.empty()) outcome.failure = std::move(why);
  };

  HistoryRecorder recorder;
  Cluster cluster(DistProtocol::kMvtilEarly,
                  chaos_config(params.transport, &recorder));
  TransactionalStore& client = cluster.client();

  if (!preload(client, kKeySpace)) {
    fail("preload never committed");
    return outcome;
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> ro_committed{0};
  std::vector<std::thread> workers;
  // Skewed read/write/RMW clients: the workload stream is a pure
  // function of (params.seed, c), so a repro replays the same ops.
  for (std::size_t c = 0; c < kRwClients; ++c) {
    workers.emplace_back([&, c] {
      WorkloadConfig wl;
      wl.key_space = kKeySpace;
      wl.ops_per_tx = 4;
      wl.write_fraction = 0.4;
      wl.rmw_fraction = 0.2;
      wl.zipf_theta = 0.8;  // contended hot keys
      wl.seed = params.seed * 1'000'003 + c;
      WorkloadGenerator gen(wl);
      const auto process = static_cast<ProcessId>(c + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const TxSpec spec = gen.next_tx();
        for (int attempt = 0;
             attempt < 8 && !stop.load(std::memory_order_relaxed);
             ++attempt) {
          if (execute_tx(client, spec, process).committed()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          std::this_thread::sleep_for(1ms);
        }
      }
    });
  }
  // Long-running declared-read-only scanner: snapshot reads on the
  // follower-read path, racing every fault in the schedule.
  workers.emplace_back([&] {
    std::uint64_t offset = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      TxSpec spec;
      for (std::uint64_t i = 0; i < 16; ++i) {
        spec.push_back(
            Op{Op::Kind::kRead, make_key((offset + i) % kKeySpace), {}});
      }
      offset += 16;
      if (execute_tx(client, spec, /*process=*/40, /*critical=*/false,
                     /*declare_read_only=*/true)
              .committed()) {
        ro_committed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::sleep_for(1ms);
      }
    }
  });

  // The workload must be established before faults land, or "commits
  // resumed" after the schedule proves nothing.
  const auto warmup_deadline = std::chrono::steady_clock::now() + 5s;
  while (committed.load() == 0 &&
         std::chrono::steady_clock::now() < warmup_deadline) {
    std::this_thread::sleep_for(2ms);
  }
  if (committed.load() == 0) fail("workload never got going");

  Nemesis nemesis(cluster, schedule);
  outcome.report = nemesis.run();

  // Healed now: commits must resume, proving the cluster survived.
  if (!Nemesis::await_leaders(cluster, 10s)) {
    fail("no sealed leader after heal");
  }
  const std::uint64_t at_heal = committed.load();
  const auto resume_deadline = std::chrono::steady_clock::now() + 15s;
  while (committed.load() < at_heal + 20 &&
         std::chrono::steady_clock::now() < resume_deadline) {
    std::this_thread::sleep_for(5ms);
  }
  if (committed.load() < at_heal + 20) {
    fail("commits did not resume after the final heal");
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  outcome.committed = committed.load();
  outcome.ro_committed = ro_committed.load();

  // Invariant probes + the MVSG oracle over the whole recorded history.
  const ::testing::AssertionResult durable =
      oracle::read_everything(client, kKeySpace, /*process=*/91);
  if (!durable) fail(durable.message());
  const ::testing::AssertionResult exact =
      leaders_hold_exactly(cluster, kKeySpace);
  if (!exact) fail(exact.message());
  const std::vector<TxRecord> history = recorder.finished();
  const ::testing::AssertionResult serializable = oracle::check_serializable(
      history, dist_store_name(DistProtocol::kMvtilEarly, kGroups,
                               kReplicationFactor));
  if (!serializable) {
    fail(serializable.message());
    // Post-mortem aid: MVTL_CHAOS_DUMP=/path dumps the full recorded
    // history, so a cycle's transactions can be inspected record by
    // record.
    if (const char* path = std::getenv("MVTL_CHAOS_DUMP")) {
      if (std::FILE* f = std::fopen(path, "w")) {
        for (const TxRecord& r : history) {
          std::fprintf(f, "tx %llu %s @%s |",
                       static_cast<unsigned long long>(r.id),
                       r.committed ? "committed" : "aborted",
                       r.commit_ts.to_string().c_str());
          for (const ReadEvent& e : r.reads) {
            std::fprintf(f, " r(%s@%s by %llu)", e.key.c_str(),
                         e.version_ts.to_string().c_str(),
                         static_cast<unsigned long long>(e.version_writer));
          }
          for (const Key& k : r.writes) std::fprintf(f, " w(%s)", k.c_str());
          std::fprintf(f, "\n");
        }
        std::fclose(f);
      }
    }
  }

  // Fault-injection evidence: the run must have actually hurt.
  outcome.dropped = cluster.net().dropped();
  const obs::MetricsSnapshot metrics = cluster.merged_metrics();
  const auto takeovers = metrics.counters.find("repl.takeovers");
  outcome.takeovers =
      takeovers == metrics.counters.end() ? 0 : takeovers->second;
  if (params.transport == TransportKind::kSim && outcome.dropped == 0) {
    fail("no messages dropped — sim fault injection did not happen");
  }
  if (outcome.report.crashes > 0 && outcome.takeovers == 0) {
    fail("leaders crashed but no takeover was recorded");
  }
  return outcome;
}

/// Scenario wrapper shared by the gtest cases: asserts the outcome and
/// prints the repro command + schedule on failure.
void expect_chaos_passes(const ChaosParams& params) {
  const ChaosOutcome outcome = run_chaos(params);
  EXPECT_TRUE(outcome.ok)
      << outcome.failure << "\nrepro: " << repro_command(params) << "\n"
      << outcome.schedule << "nemesis log:\n"
      << outcome.report.log;
}

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  const NemesisTopology topology{kGroups, kReplicationFactor, kKeySpace};
  NemesisOptions options;
  options.seed = 42;
  const FaultSchedule a = generate_schedule(options, topology);
  const FaultSchedule b = generate_schedule(options, topology);
  EXPECT_EQ(a.describe(), b.describe());  // byte-identical
  options.seed = 43;
  EXPECT_NE(a.describe(), generate_schedule(options, topology).describe());
}

TEST(ChaosScheduleTest, GuaranteedInjectionActions) {
  const NemesisTopology topology{kGroups, kReplicationFactor, kKeySpace};
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    NemesisOptions options;
    options.seed = seed;
    const FaultSchedule schedule = generate_schedule(options, topology);
    ASSERT_GE(schedule.actions.size(), 3u);
    EXPECT_EQ(schedule.actions.front().kind, FaultKind::kDropNext);
    EXPECT_EQ(schedule.actions.back().kind, FaultKind::kHeal);
    bool crash = false;
    for (const FaultAction& action : schedule.actions) {
      crash |= action.kind == FaultKind::kCrashLeader;
    }
    EXPECT_TRUE(crash) << "seed " << seed << " schedules no leader crash";
  }
}

TEST(ChaosScheduleTest, DegenerateTopologiesStayValid) {
  // rf 1, one group, tiny key space: no partitions between one server's
  // endpoints, no crashes (majority rule), no migrations — but still a
  // valid drop/heal schedule.
  NemesisOptions options;
  options.seed = 7;
  const FaultSchedule schedule =
      generate_schedule(options, NemesisTopology{1, 1, 4});
  EXPECT_EQ(schedule.actions.front().kind, FaultKind::kDropNext);
  for (const FaultAction& action : schedule.actions) {
    EXPECT_NE(action.kind, FaultKind::kCrashLeader);
    EXPECT_NE(action.kind, FaultKind::kMigrate);
    EXPECT_NE(action.kind, FaultKind::kPartition);
  }
}

class ChaosSimTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSimTest, SeedSurvivesAndCertifies) {
  ChaosParams params;
  params.seed = GetParam();
  params.transport = TransportKind::kSim;
  expect_chaos_passes(params);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSimTest, ::testing::Values(1, 2, 3));

TEST(ChaosTcpTest, SeedOneSurvivesOverTcp) {
  // Same schedule bytes as sim seed 1; sim-only faults degrade to their
  // crash/heal equivalents, so the run still injects real faults.
  ChaosParams params;
  params.seed = 1;
  params.transport = TransportKind::kTcp;
  expect_chaos_passes(params);
}

TEST(ChaosDeterminismTest, SameSeedSameScheduleAndVerdict) {
  ChaosParams params;
  params.seed = 5;
  const ChaosOutcome first = run_chaos(params);
  const ChaosOutcome second = run_chaos(params);
  EXPECT_EQ(first.schedule, second.schedule);  // byte-identical plan
  EXPECT_EQ(first.ok, second.ok) << first.failure << second.failure;
  EXPECT_TRUE(first.ok) << first.failure << "\nrepro: "
                        << repro_command(params) << "\n" << first.schedule;
}

}  // namespace

/// Repro mode: `chaos_test --seed=N [--transport=sim|tcp] [--steps=K]`
/// runs exactly one scenario and prints the schedule, the nemesis log
/// and the verdict. Exit 0 iff the oracle passed. Without --seed, the
/// binary is a normal gtest runner.
int chaos_repro_main(const ChaosParams& params) {
  const ChaosOutcome outcome = run_chaos(params);
  std::printf("%s\n%s", repro_command(params).c_str(),
              outcome.schedule.c_str());
  std::printf("nemesis log:\n%scommitted=%llu ro_committed=%llu "
              "dropped=%llu takeovers=%llu crashes=%zu applied=%zu "
              "degraded=%zu skipped=%zu epochs=%zu\n",
              outcome.report.log.c_str(),
              static_cast<unsigned long long>(outcome.committed),
              static_cast<unsigned long long>(outcome.ro_committed),
              static_cast<unsigned long long>(outcome.dropped),
              static_cast<unsigned long long>(outcome.takeovers),
              outcome.report.crashes, outcome.report.applied,
              outcome.report.degraded, outcome.report.skipped,
              outcome.report.epochs_advanced);
  if (!outcome.ok) {
    std::printf("FAIL: %s\nrepro: %s\n", outcome.failure.c_str(),
                repro_command(params).c_str());
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace mvtl

int main(int argc, char** argv) {
  mvtl::ChaosParams params;
  bool repro = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      params.seed = std::strtoull(arg + 7, nullptr, 10);
      repro = true;
    } else if (std::strcmp(arg, "--transport=tcp") == 0) {
      params.transport = mvtl::TransportKind::kTcp;
    } else if (std::strcmp(arg, "--transport=sim") == 0) {
      params.transport = mvtl::TransportKind::kSim;
    } else if (std::strncmp(arg, "--steps=", 8) == 0) {
      params.steps = std::strtoull(arg + 8, nullptr, 10);
    }
  }
  if (repro) return mvtl::chaos_repro_main(params);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
