#!/usr/bin/env bash
# Multi-process failover integration test.
#
# Starts a 2-group x RF=3 cluster as 6 real OS processes through
# scripts/mvtl_cluster.sh, runs the distributed_store workload against
# it from a separate client process (--connect), kill -9s one group
# leader mid-run, and requires the client to exit 0 — which it only
# does when commits RESUME after the kill (final-quarter commit check)
# and the recorded history is MVSG-acyclic (--verify).
#
# Usage: multiproc_failover.sh BUILD_DIR SOURCE_DIR
set -euo pipefail

build_dir=$1
source_dir=$2
launcher="$source_dir/scripts/mvtl_cluster.sh"

run_dir=$(mktemp -d)
trap '"$launcher" stop "$run_dir/cluster.conf" "$build_dir" "$run_dir" \
  > /dev/null 2>&1 || true; rm -rf "$run_dir"' EXIT

# Ports are picked pseudo-randomly; on a bind conflict with another
# process on the machine, retry with a different base.
for attempt in 1 2 3; do
  base=$(( 20000 + (RANDOM % 400) * 100 ))
  {
    echo "protocol = mvtil-early"
    echo "replication_factor = 3"
    echo "key_space = 2000"
    echo "suspect_timeout_ms = 250"
    echo "trace_sample = 50"  # every 50th client tx carries a trace id
    for i in 0 1 2 3 4 5; do
      echo "endpoint = 127.0.0.1:$((base + i))"
    done
  } > "$run_dir/cluster.conf"
  if "$launcher" start "$run_dir/cluster.conf" "$build_dir" "$run_dir"; then
    break
  fi
  echo "start attempt $attempt failed (port conflict?), retrying" >&2
  [ "$attempt" -lt 3 ] || { echo "could not start cluster" >&2; exit 1; }
done

pgrep -f "mvtl_shard_server --config=$run_dir/cluster.conf" > /dev/null \
  || { echo "no server processes found" >&2; exit 1; }
nprocs=$(pgrep -fc "mvtl_shard_server --config=$run_dir/cluster.conf")
echo "cluster is $nprocs OS processes"
[ "$nprocs" -eq 6 ] || { echo "expected 6 server processes" >&2; exit 1; }

ctl="$build_dir/tools/mvtl_ctl"

"$build_dir/examples/distributed_store" \
  --connect="$run_dir/cluster.conf" --seconds=6 --verify &
client=$!

# Kill the leader only once client traffic is provably flowing — at
# least 100 op batches served — instead of sleeping a fixed amount:
# a fixed sleep undershoots on loaded CI machines (kill lands after the
# client already finished) and overshoots on fast ones. Bounded: after
# 20s the kill proceeds regardless so a wedged client still fails the
# final-quarter commit check rather than hanging the test.
SECONDS=0
until "$ctl" --config="$run_dir/cluster.conf" metrics --json 2>/dev/null \
    | grep -Eq '"rpc\.op_batch\.latency_us":\{"count":[1-9][0-9]{2,}'; do
  if [ "$SECONDS" -ge 20 ]; then
    echo "no sustained client traffic within ${SECONDS}s; killing anyway" >&2
    break
  fi
  sleep 0.1
done
"$launcher" kill-leader "$run_dir/cluster.conf" "$build_dir" "$run_dir" 0

if ! wait "$client"; then
  echo "client failed; server logs follow:" >&2
  tail -n 20 "$run_dir"/server*.log >&2 || true
  exit 1
fi

# Observability over the post-failover cluster. The metrics scrape lands
# in the build dir so CI can upload it next to the bench JSON artifacts.
metrics_json="$build_dir/MULTIPROC_metrics.json"
"$ctl" --config="$run_dir/cluster.conf" metrics --json > "$metrics_json"

# The kill -9ed leader must have been replaced: the merged (last
# occurrence = cluster-wide sum) takeover counter moved off zero.
takeovers=$(grep -o '"repl.takeovers":[0-9]*' "$metrics_json" \
  | tail -1 | cut -d: -f2)
[ -n "${takeovers:-}" ] && [ "$takeovers" -gt 0 ] \
  || { echo "expected repl.takeovers > 0, got '${takeovers:-}'" >&2; exit 1; }

# Per-RPC server-side histograms recorded real traffic.
grep -q '"rpc.op_batch.latency_us":{"count":[1-9]' "$metrics_json" \
  || { echo "no op_batch latency recorded in $metrics_json" >&2; exit 1; }

# A sampled transaction's trace reconstructs across processes: spans
# from at least two of the surviving server processes.
trace_out=$("$ctl" --config="$run_dir/cluster.conf" trace latest)
echo "$trace_out" | head -5
echo "$trace_out" | grep -Eq 'across ([2-9]|[0-9]{2,}) servers' \
  || { echo "trace did not span multiple servers" >&2; exit 1; }

echo "multiproc failover: OK (takeovers=$takeovers)"
