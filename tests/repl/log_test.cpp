// Replicated-log primitives: the wire encoding round-trips arbitrary
// bytes, malformed values are rejected, and register ids are per
// group/slot.
#include <gtest/gtest.h>

#include <string>

#include "repl/log.hpp"

namespace mvtl {
namespace {

TEST(LogEntryCodecTest, CommitEntryRoundTripsArbitraryBytes) {
  CommitRecord rec;
  rec.gtx = 0xDEADBEEFCAFE;
  rec.ts = Timestamp::make(123'456, 42);
  rec.writes.emplace_back("k|with,delims", std::string("v\0\xFFbinary", 8));
  rec.writes.emplace_back("", "");  // empty key and value survive
  rec.reads.emplace_back("another key", Timestamp::make(7, 3));
  rec.reads.emplace_back(std::string("nul\0key", 7), Timestamp::min());

  const LogEntry entry = LogEntry::commit_entry(9, rec);
  LogEntry decoded;
  ASSERT_TRUE(decode_log_entry(encode_log_entry(entry), &decoded));
  EXPECT_EQ(decoded.kind, LogEntry::Kind::kCommit);
  EXPECT_EQ(decoded.term, 9u);
  EXPECT_EQ(decoded.commit.gtx, rec.gtx);
  EXPECT_EQ(decoded.commit.ts, rec.ts);
  ASSERT_EQ(decoded.commit.writes.size(), 2u);
  EXPECT_EQ(decoded.commit.writes[0], rec.writes[0]);
  EXPECT_EQ(decoded.commit.writes[1], rec.writes[1]);
  ASSERT_EQ(decoded.commit.reads.size(), 2u);
  EXPECT_EQ(decoded.commit.reads[0], rec.reads[0]);
  EXPECT_EQ(decoded.commit.reads[1], rec.reads[1]);
}

TEST(LogEntryCodecTest, FloorAndTermEntriesRoundTrip) {
  LogEntry decoded;
  ASSERT_TRUE(decode_log_entry(
      encode_log_entry(LogEntry::floor_entry(3, Timestamp::make(99, 1))),
      &decoded));
  EXPECT_EQ(decoded.kind, LogEntry::Kind::kFloor);
  EXPECT_EQ(decoded.term, 3u);
  EXPECT_EQ(decoded.floor, Timestamp::make(99, 1));

  ASSERT_TRUE(decode_log_entry(encode_log_entry(LogEntry::term_entry(5, 2)),
                               &decoded));
  EXPECT_EQ(decoded.kind, LogEntry::Kind::kTerm);
  EXPECT_EQ(decoded.term, 5u);
  EXPECT_EQ(decoded.leader, 2u);
}

TEST(LogEntryCodecTest, MalformedValuesAreRejected) {
  LogEntry out;
  EXPECT_FALSE(decode_log_entry("", &out));
  EXPECT_FALSE(decode_log_entry("\x07", &out));        // unknown kind
  EXPECT_FALSE(decode_log_entry("\x00\x01", &out));    // truncated term
  // Trailing garbage after a well-formed entry is rejected too.
  PaxosValue v = encode_log_entry(LogEntry::term_entry(1, 0));
  v += "x";
  EXPECT_FALSE(decode_log_entry(v, &out));
}

TEST(LogEntryCodecTest, RegisterIdsArePerGroupAndSlot) {
  EXPECT_EQ(log_slot_id(2, 17), "grouplog/2/17");
  EXPECT_EQ(leadership_id(0, 4), "lead/0/4");
  EXPECT_NE(log_slot_id(1, 0), log_slot_id(0, 1));
}

}  // namespace
}  // namespace mvtl
