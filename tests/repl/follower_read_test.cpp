// Follower reads: declared-read-only transactions are served as
// lock-free snapshot reads at the group's closed-timestamp floor, routed
// to follower replicas — correct values, zero commit messages, and a
// measurable shift of read load off the leaders (asserted via the
// per-server StoreStats counters).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/cluster.hpp"
#include "sync/clock.hpp"
#include "txbench/workload.hpp"
#include "verify/history.hpp"
#include "verify/mvsg.hpp"

namespace mvtl {
namespace {

using namespace std::chrono_literals;

ClusterConfig repl_config(HistoryRecorder* recorder, bool follower_reads) {
  ClusterConfig config;
  config.servers = 2;             // groups
  config.replication_factor = 3;  // 6 physical servers
  config.follower_reads = follower_reads;
  config.server_threads = 2;
  config.net = NetProfile::instant();
  config.mvtil_delta_ticks = 50'000;
  // Group ticker period = suspect/4: floors refresh every ~60 ms. The
  // lease window is deliberately generous — under a loaded sanitizer
  // run a short lease flaps and sends every read back to the leader,
  // which is exactly what the load-shift test must not conflate with
  // the routing knob it measures.
  config.suspect_timeout = std::chrono::milliseconds{250};
  config.floor_lag_ticks = 64;
  config.key_space = 1'000;  // group 0 owns [0,500), group 1 [500,1000)
  config.clock = std::make_shared<LogicalClock>(1'000);
  config.recorder = recorder;
  return config;
}

bool write_pair(TransactionalStore& client, const Key& a, const Value& va,
                const Key& b, const Value& vb) {
  auto tx = client.begin(TxOptions{.process = 1});
  return client.write(*tx, a, va) && client.write(*tx, b, vb) &&
         client.commit(*tx).committed();
}

/// One declared-read-only transaction reading both keys; false when the
/// floors have not caught up yet (retryable).
bool ro_read_pair(TransactionalStore& client, const Key& a, const Key& b,
                  std::string* va, std::string* vb) {
  auto tx = client.begin(TxOptions{.process = 5, .read_only = true});
  const ReadResult ra = client.read(*tx, a);
  if (!ra.ok) return false;
  const ReadResult rb = client.read(*tx, b);
  if (!rb.ok) return false;
  *va = ra.value.value_or("");
  *vb = rb.value.value_or("");
  return client.commit(*tx).committed();
}

/// Retries `fn` until it succeeds or ~5 s pass.
template <typename Fn>
bool eventually(Fn&& fn) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (fn()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return false;
}

TEST(FollowerReadTest, SnapshotReadsSeeCommittedDataAndStayFresh) {
  HistoryRecorder recorder;
  Cluster cluster(DistProtocol::kMvtilEarly, repl_config(&recorder, true));
  TransactionalStore& client = cluster.client();
  auto clock = cluster.config().clock;

  ASSERT_TRUE(write_pair(client, make_key(1), "a1", make_key(900), "b1"));
  // Push the clock past the floor lag so the floors can cross the
  // commits, then let the tickers replicate and publish them.
  clock->advance_to(0, clock->now(0) + 500);

  std::string va;
  std::string vb;
  ASSERT_TRUE(eventually([&] {
    return ro_read_pair(client, make_key(1), make_key(900), &va, &vb) &&
           va == "a1" && vb == "b1";
  })) << "follower reads never caught up: got '" << va << "'/'" << vb << "'";

  // A newer commit becomes visible once the floor passes it: bounded
  // staleness, not indefinite staleness.
  ASSERT_TRUE(write_pair(client, make_key(1), "a2", make_key(900), "b2"));
  clock->advance_to(0, clock->now(0) + 500);
  ASSERT_TRUE(eventually([&] {
    return ro_read_pair(client, make_key(1), make_key(900), &va, &vb) &&
           va == "a2" && vb == "b2";
  })) << "snapshot reads stuck before the newer commit";

  // Follower replicas actually served reads, and the recorded history —
  // snapshot reads included — is serializable.
  const StoreStats stats = cluster.client().stats();
  EXPECT_GT(stats.follower_reads, 0u);
  const CheckReport mvsg = MvsgChecker::check_acyclic(recorder.finished());
  EXPECT_TRUE(mvsg.serializable) << mvsg.violation;
  const CheckReport order =
      MvsgChecker::check_timestamp_order(recorder.finished());
  EXPECT_TRUE(order.serializable) << order.violation;
}

TEST(FollowerReadTest, WritingInsideDeclaredReadOnlyAborts) {
  Cluster cluster(DistProtocol::kMvtilEarly, repl_config(nullptr, true));
  TransactionalStore& client = cluster.client();

  auto tx = client.begin(TxOptions{.process = 1, .read_only = true});
  EXPECT_FALSE(client.write(*tx, make_key(1), "x"));
  EXPECT_FALSE(tx->is_active());
  EXPECT_EQ(tx->abort_reason(), AbortReason::kUserAbort);
  EXPECT_FALSE(client.commit(*tx).committed());
}

/// Every follower has applied a floor and holds a current lease — i.e.
/// it can actually serve snapshot reads.
bool followers_ready(Cluster& cluster) {
  for (std::size_t i = 0; i < cluster.server_count(); ++i) {
    const GroupInfo info = cluster.server(i).group_info();
    if (info.leading) continue;
    if (info.floor.is_min() || !info.lease_ok) return false;
  }
  return true;
}

/// Sum of served ops over each group's current leader.
std::uint64_t leader_served_ops(Cluster& cluster) {
  std::uint64_t total = 0;
  for (std::size_t g = 0; g < cluster.group_count(); ++g) {
    for (std::size_t r = 0; r < cluster.replication_factor(); ++r) {
      ShardServer& s =
          cluster.server(g * cluster.replication_factor() + r);
      if (s.group_info().leading) {
        total += s.served_ops();
        break;
      }
    }
  }
  return total;
}

TEST(FollowerReadTest, FollowerRoutingMeasurablyReducesLeaderLoad) {
  constexpr int kReadTxs = 30;
  std::uint64_t leader_load[2] = {0, 0};
  std::uint64_t follower_served[2] = {0, 0};
  for (const bool follower_reads : {false, true}) {
    Cluster cluster(DistProtocol::kMvtilEarly,
                    repl_config(nullptr, follower_reads));
    TransactionalStore& client = cluster.client();
    auto clock = cluster.config().clock;

    ASSERT_TRUE(write_pair(client, make_key(1), "a", make_key(900), "b"));
    clock->advance_to(0, clock->now(0) + 500);
    std::string va;
    std::string vb;
    ASSERT_TRUE(eventually([&] {
      return ro_read_pair(client, make_key(1), make_key(900), &va, &vb);
    }));
    // Measure only once the followers can serve (floors replicated,
    // leases current) — before that every read falls back to the leader.
    ASSERT_TRUE(eventually([&] { return followers_ready(cluster); }));

    const std::uint64_t before = leader_served_ops(cluster);
    int served = 0;
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (served < kReadTxs && std::chrono::steady_clock::now() < deadline) {
      if (ro_read_pair(client, make_key(1), make_key(900), &va, &vb)) {
        ++served;
      }
    }
    ASSERT_EQ(served, kReadTxs);
    const std::size_t idx = follower_reads ? 1 : 0;
    leader_load[idx] = leader_served_ops(cluster) - before;
    follower_served[idx] = cluster.client().stats().follower_reads;
  }
  // Leader-only routing puts every snapshot read on the leaders;
  // follower routing takes (nearly) all of them off.
  EXPECT_EQ(follower_served[0], 0u);
  EXPECT_GT(follower_served[1], 0u);
  EXPECT_LT(leader_load[1], leader_load[0])
      << "follower reads did not reduce leader request load (leader-only="
      << leader_load[0] << ", follower-routed=" << leader_load[1] << ")";
}

}  // namespace
}  // namespace mvtl
