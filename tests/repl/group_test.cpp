// GroupMember semantics over an in-memory transport: append/replicate,
// dedup, closed-timestamp floors (advance, prepared-transaction pinning,
// snapshot gating), lease expiry, and takeover sealing the log against
// the deposed leader.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "dist/paxos.hpp"
#include "repl/group.hpp"
#include "repl/log.hpp"
#include "sync/clock.hpp"

namespace mvtl {
namespace {

using namespace std::chrono_literals;

template <typename T>
std::future<T> ready(T value) {
  std::promise<T> p;
  p.set_value(std::move(value));
  return p.get_future();
}

/// Three GroupMembers wired directly to each other's acceptor tables —
/// no network, no tickers; every transition is driven by the test.
struct TestGroup {
  static constexpr std::size_t kN = 3;

  explicit TestGroup(std::chrono::milliseconds suspect,
                     std::uint64_t floor_lag = 8) {
    applied.resize(kN);
    for (std::size_t r = 0; r < kN; ++r) down[r].store(false);
    for (std::size_t r = 0; r < kN; ++r) {
      GroupMemberConfig gc;
      gc.group = 0;
      gc.members = kN;
      gc.rank = r;
      gc.suspect_timeout = suspect;
      gc.floor_lag_ticks = floor_lag;
      gc.clock = clock;
      gc.propose_attempts = 4;

      GroupTransport t;
      for (std::size_t i = 0; i < kN; ++i) t.acceptors.push_back(endpoint(i));
      t.fetch = [this](std::size_t rank, std::uint64_t from) {
        return down[rank].load() ? std::vector<PaxosValue>{}
                                 : members[rank]->encoded_entries(from);
      };
      t.send_beat = [this](std::size_t rank, const GroupBeat& beat) {
        if (!down[rank].load()) members[rank]->on_beat(beat);
      };
      t.crashed = [this, r] { return down[r].load(); };

      members.push_back(std::make_unique<GroupMember>(
          std::move(gc), std::move(t),
          [this, r](const CommitRecord& rec) { applied[r].push_back(rec); }));
    }
  }

  AcceptorEndpoint endpoint(std::size_t i) {
    AcceptorEndpoint ep;
    ep.prepare = [this, i](const std::string& d, std::uint64_t b) {
      return ready(down[i].load() ? PaxosPrepareReply{}
                                  : tables[i].on_prepare(d, b));
    };
    ep.accept = [this, i](const std::string& d, std::uint64_t b,
                          const PaxosValue& v) {
      return ready(down[i].load() ? PaxosAcceptReply{}
                                  : tables[i].on_accept(d, b, v));
    };
    return ep;
  }

  CommitRecord record(TxId gtx) {
    CommitRecord rec;
    rec.gtx = gtx;
    rec.ts = Timestamp::make(clock->now(0), 1);
    rec.writes.emplace_back("k", "v");
    return rec;
  }

  std::shared_ptr<LogicalClock> clock = std::make_shared<LogicalClock>(1'000);
  std::array<AcceptorTable, kN> tables;
  std::array<std::atomic<bool>, kN> down;
  std::vector<std::unique_ptr<GroupMember>> members;
  std::vector<std::vector<CommitRecord>> applied;
};

TEST(GroupMemberTest, LeaderAppendsReplicateToFollowers) {
  TestGroup g(1'000ms);
  ASSERT_TRUE(g.members[0]->leads());
  EXPECT_FALSE(g.members[1]->leads());

  EXPECT_EQ(g.members[0]->append_commit(g.record(1)),
            GroupMember::Append::kOk);
  EXPECT_EQ(g.members[0]->log_length(), 1u);
  // The leader's own apply is the caller's job (engine path), not the
  // replay callback's.
  EXPECT_TRUE(g.applied[0].empty());

  // Heartbeat announces the log length; the followers' next tick pulls.
  g.members[0]->tick_now();
  g.members[1]->tick_now();
  g.members[2]->tick_now();
  ASSERT_EQ(g.applied[1].size(), 1u);
  EXPECT_EQ(g.applied[1][0].gtx, 1u);
  ASSERT_EQ(g.applied[2].size(), 1u);
  EXPECT_EQ(g.members[1]->log_length(), g.members[0]->log_length());
}

TEST(GroupMemberTest, AppendCommitDeduplicates) {
  TestGroup g(1'000ms);
  EXPECT_EQ(g.members[0]->append_commit(g.record(7)),
            GroupMember::Append::kOk);
  EXPECT_EQ(g.members[0]->append_commit(g.record(7)),
            GroupMember::Append::kAlreadyApplied);
  EXPECT_EQ(g.members[0]->log_length(), 1u);
  EXPECT_FALSE(g.members[1]->leads());
  EXPECT_EQ(g.members[1]->append_commit(g.record(8)),
            GroupMember::Append::kDeposed);
}

TEST(GroupMemberTest, FloorAdvancesAndGatesSnapshots) {
  TestGroup g(1'000ms, /*floor_lag=*/8);
  g.clock->advance_to(0, 5'000);
  g.members[0]->tick_now();  // leader: appends a Floor entry + beats
  const Timestamp leader_floor = g.members[0]->floor();
  EXPECT_FALSE(leader_floor.is_min());
  EXPECT_GE(leader_floor.tick(), 5'000u - 8u);

  // Followers serve only once they applied the Floor entry.
  Timestamp chosen;
  EXPECT_EQ(g.members[1]->snapshot_gate(Timestamp::min(), &chosen),
            GroupMember::Serve::kBehind);
  g.members[1]->tick_now();  // pulls the log (beat already announced it)
  ASSERT_EQ(g.members[1]->snapshot_gate(Timestamp::min(), &chosen),
            GroupMember::Serve::kOk);
  EXPECT_EQ(chosen, g.members[1]->floor());
  // Explicit snapshots at or below the floor pass; above it refuse.
  EXPECT_EQ(g.members[1]->snapshot_gate(chosen, &chosen),
            GroupMember::Serve::kOk);
  Timestamp above = leader_floor.next();
  EXPECT_EQ(g.members[1]->snapshot_gate(above.next(), &above),
            GroupMember::Serve::kBehind);
}

TEST(GroupMemberTest, PreparedTransactionsPinTheFloor) {
  TestGroup g(1'000ms, /*floor_lag=*/8);
  const Timestamp pin = Timestamp::make(2'000, 0);
  const IntervalSet admitted = g.members[0]->admit_prepared(
      42, IntervalSet{Interval{pin, pin.plus_ticks(100)}});
  ASSERT_FALSE(admitted.is_empty());
  EXPECT_EQ(admitted.min(), pin);
  g.clock->advance_to(0, 50'000);
  g.members[0]->tick_now();
  EXPECT_LT(g.members[0]->floor(), pin);

  g.members[0]->forget_prepared(42);
  g.members[0]->tick_now();
  EXPECT_GT(g.members[0]->floor(), pin);
}

TEST(GroupMemberTest, ServedSnapshotsFenceLaterCommits) {
  TestGroup g(1'000ms, /*floor_lag=*/8);
  // Nothing served yet: the fence is down and prepares pass untouched —
  // the replication-factor-1 write path must be byte-identical to the
  // unreplicated engine until snapshot reads are actually used.
  EXPECT_TRUE(g.members[0]->clamp_bound().is_min());
  const Timestamp lo = Timestamp::make(10, 0);
  EXPECT_EQ(g.members[0]
                ->admit_prepared(1, IntervalSet{Interval{lo, lo.plus_ticks(5)}})
                .min(),
            lo);
  g.members[0]->forget_prepared(1);

  g.clock->advance_to(0, 5'000);
  g.members[0]->tick_now();
  Timestamp served;
  ASSERT_EQ(g.members[0]->snapshot_gate(Timestamp::min(), &served),
            GroupMember::Serve::kOk);
  EXPECT_EQ(g.members[0]->clamp_bound(), served);

  // Post-serve, candidates at or below the snapshot are clamped away and
  // a commit record below it is refused outright.
  const IntervalSet clamped = g.members[0]->admit_prepared(
      2, IntervalSet{Interval{lo, served.plus_ticks(5)}});
  ASSERT_FALSE(clamped.is_empty());
  EXPECT_GT(clamped.min(), served);
  g.members[0]->forget_prepared(2);
  CommitRecord below = g.record(99);
  below.ts = served;
  EXPECT_EQ(g.members[0]->append_commit(below),
            GroupMember::Append::kUnavailable);
}

TEST(GroupMemberTest, StaleFollowerRefusesOnLeaseExpiry) {
  TestGroup g(5ms);
  std::this_thread::sleep_for(20ms);
  Timestamp chosen;
  EXPECT_EQ(g.members[1]->snapshot_gate(Timestamp::min(), &chosen),
            GroupMember::Serve::kLeaseExpired);
}

TEST(GroupMemberTest, TakeoverReplaysSealsAndDeposesOldLeader) {
  TestGroup g(5ms);
  EXPECT_EQ(g.members[0]->append_commit(g.record(11)),
            GroupMember::Append::kOk);

  // The leader dies; follower 1's lease runs out and it takes over.
  g.down[0].store(true);
  std::this_thread::sleep_for(20ms);
  g.members[1]->tick_now();
  ASSERT_TRUE(g.members[1]->leads());
  // The replayed tail delivered the old leader's commit.
  ASSERT_EQ(g.applied[1].size(), 1u);
  EXPECT_EQ(g.applied[1][0].gtx, 11u);
  // Log = [commit, Term seal].
  EXPECT_EQ(g.members[1]->log_length(), 2u);

  // The old leader comes back, still believing in its term: its next
  // append loses to the seal and reports deposed, never acknowledged.
  g.down[0].store(false);
  EXPECT_EQ(g.members[0]->append_commit(g.record(12)),
            GroupMember::Append::kDeposed);
  EXPECT_FALSE(g.members[0]->leads());
  EXPECT_TRUE(g.applied[0].empty());  // gtx 12 never applied anywhere
  EXPECT_EQ(g.members[1]->append_commit(g.record(13)),
            GroupMember::Append::kOk);
}

}  // namespace
}  // namespace mvtl
