// Failover serializability: with replication_factor 3, crashing the
// leader of every group mid-workload never halts the cluster — commits
// resume once the followers' leases expire and a takeover seals each
// group's log — no acknowledged commit is lost (a final read-everything
// pass would expose a lost version as a timestamp-order violation), and
// the whole recorded history stays multiversion-view serializable, under
// every distributed protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/cluster.hpp"
#include "sync/clock.hpp"
#include "txbench/driver.hpp"
#include "txbench/workload.hpp"
#include "verify/mvsg_oracle.hpp"

namespace mvtl {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kKeySpace = 64;

ClusterConfig failover_config(HistoryRecorder* recorder) {
  ClusterConfig config;
  config.servers = 2;             // groups
  config.replication_factor = 3;  // 6 physical servers
  config.server_threads = 2;
  config.net = NetProfile::instant();
  config.mvtil_delta_ticks = 4'096;
  config.lock_timeout = std::chrono::microseconds{5'000};
  // Lease + suspicion window: failover completes within a few of these.
  config.suspect_timeout = std::chrono::milliseconds{150};
  // Floors stay dormant (this test exercises the write path; the logical
  // clock never reaches the lag), so the clamp cannot interfere.
  config.floor_lag_ticks = 1'000'000'000;
  config.key_space = kKeySpace;
  config.clock = std::make_shared<LogicalClock>(1'000);
  config.recorder = recorder;
  return config;
}

/// Current leader server index of group `g` (member 0's view).
std::size_t leader_of(Cluster& cluster, std::size_t g) {
  const std::size_t rf = cluster.replication_factor();
  for (std::size_t r = 0; r < rf; ++r) {
    if (cluster.server(g * rf + r).group_info().leading) return g * rf + r;
  }
  return g * rf;
}

class FailoverTest : public ::testing::TestWithParam<DistProtocol> {};

TEST_P(FailoverTest, LeaderCrashMidWorkloadKeepsCommittingSerializably) {
  const DistProtocol protocol = GetParam();
  HistoryRecorder recorder;
  Cluster cluster(protocol, failover_config(&recorder));
  TransactionalStore& client = cluster.client();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < 4; ++c) {
    workers.emplace_back([&, c] {
      WorkloadConfig wl;
      wl.key_space = kKeySpace;
      wl.ops_per_tx = 4;
      wl.write_fraction = 0.5;
      wl.seed = 100 + c;
      WorkloadGenerator gen(wl);
      const auto process = static_cast<ProcessId>(c + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const TxSpec spec = gen.next_tx();
        for (int attempt = 0;
             attempt < 8 && !stop.load(std::memory_order_relaxed);
             ++attempt) {
          if (execute_tx(client, spec, process).committed()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          std::this_thread::sleep_for(1ms);
        }
      }
    });
  }

  // Let the workload establish itself, then kill the leader of EVERY
  // group at once (one crash per group — each group keeps a majority).
  std::this_thread::sleep_for(250ms);
  ASSERT_GT(committed.load(), 0u) << "workload never got going";
  std::vector<std::size_t> crashed;
  for (std::size_t g = 0; g < cluster.group_count(); ++g) {
    const std::size_t leader = leader_of(cluster, g);
    crashed.push_back(leader);
    cluster.server(leader).crash();
  }

  // Commits must resume within the suspicion window: followers detect
  // the silent leader, win the term register, replay + seal the log, and
  // clients re-route onto the new leaders.
  const std::uint64_t at_crash = committed.load();
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (committed.load() < at_crash + 20 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_GE(committed.load(), at_crash + 20)
      << "commits did not resume after crashing the leaders";

  // Leadership actually moved off the crashed servers.
  for (std::size_t g = 0; g < cluster.group_count(); ++g) {
    const std::size_t leader = leader_of(cluster, g);
    EXPECT_NE(leader, crashed[g]) << "group " << g << " kept a dead leader";
    EXPECT_FALSE(cluster.server(leader).crashed());
  }

  // Durability probe: a lost acknowledged commit surfaces as a
  // timestamp-order violation in the oracle check below.
  EXPECT_TRUE(oracle::read_everything(client, kKeySpace, /*process=*/60));
  EXPECT_TRUE(oracle::check_serializable(recorder.finished(),
                                         dist_store_name(protocol, 2, 3)));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, FailoverTest,
    ::testing::Values(DistProtocol::kMvtilEarly, DistProtocol::kMvtilLate,
                      DistProtocol::kTo, DistProtocol::kPessimistic),
    [](const ::testing::TestParamInfo<DistProtocol>& info) {
      std::string name = dist_protocol_name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mvtl
