#include "common/epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mvtl::ebr {
namespace {

TEST(EpochTest, RetiredObjectFreedAfterDrain) {
  std::atomic<int> freed{0};
  struct Tracked {
    std::atomic<int>* counter;
    ~Tracked() { counter->fetch_add(1); }
  };
  retire(new Tracked{&freed});
  EXPECT_TRUE(Collector::instance().drain_for_testing());
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, PinnedGuardBlocksReclamation) {
  // An object retired while a guard is pinned must not be freed until
  // the guard drops — the collector needs two epoch advances, and no
  // advance can happen past a pinned thread.
  std::atomic<int> freed{0};
  struct Tracked {
    std::atomic<int>* counter;
    ~Tracked() { counter->fetch_add(1); }
  };
  std::atomic<bool> release{false};
  std::atomic<bool> pinned{false};
  std::thread holder([&] {
    Guard g;
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  retire(new Tracked{&freed});
  // Bounded drain attempts cannot reclaim while the holder is pinned.
  EXPECT_FALSE(Collector::instance().drain_for_testing(8));
  EXPECT_EQ(freed.load(), 0);

  release.store(true);
  holder.join();
  EXPECT_TRUE(Collector::instance().drain_for_testing());
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, GuardIsReentrant) {
  Guard outer;
  {
    Guard inner;  // must not deadlock or unpin early
  }
  // Still pinned here: retiring + draining with our own guard alive
  // cannot free (we are the pinned thread). That distinction is covered
  // by PinnedGuardBlocksReclamation; here we only check no crash.
  SUCCEED();
}

TEST(EpochTest, ExitedThreadOrphansAreReclaimed) {
  // A thread that retires objects and exits must hand its local retire
  // list to the collector (orphans), not leak it.
  std::atomic<int> freed{0};
  struct Tracked {
    std::atomic<int>* counter;
    ~Tracked() { counter->fetch_add(1); }
  };
  std::thread t([&] {
    Guard g;
    retire(new Tracked{&freed});
  });
  t.join();
  EXPECT_TRUE(Collector::instance().drain_for_testing());
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ManyThreadsRetireConcurrently) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<int> freed{0};
  struct Tracked {
    std::atomic<int>* counter;
    ~Tracked() { counter->fetch_add(1); }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kPerThread; ++j) {
        Guard g;
        retire(new Tracked{&freed});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(Collector::instance().drain_for_testing());
  EXPECT_EQ(freed.load(), kThreads * kPerThread);
  EXPECT_EQ(Collector::instance().approx_pending(), 0u);
}

TEST(EpochTest, GlobalEpochAdvancesUnderChurn) {
  const uint64_t before = Collector::instance().global_epoch();
  for (int i = 0; i < 256; ++i) {
    Guard g;
    retire(new int(i));
  }
  EXPECT_TRUE(Collector::instance().drain_for_testing());
  EXPECT_GT(Collector::instance().global_epoch(), before);
}

}  // namespace
}  // namespace mvtl::ebr
