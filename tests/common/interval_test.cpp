#include "common/interval.hpp"

#include <gtest/gtest.h>

namespace mvtl {
namespace {

Timestamp ts(std::uint64_t raw) { return Timestamp{raw}; }

TEST(IntervalTest, DefaultIsEmpty) {
  EXPECT_TRUE(Interval{}.is_empty());
  EXPECT_EQ(Interval{}.size(), 0u);
}

TEST(IntervalTest, InvertedBoundsNormalizeToEmpty) {
  const Interval iv{ts(5), ts(3)};
  EXPECT_TRUE(iv.is_empty());
  EXPECT_EQ(iv, Interval::empty());
}

TEST(IntervalTest, PointInterval) {
  const Interval p = Interval::point(ts(7));
  EXPECT_FALSE(p.is_empty());
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.contains(ts(7)));
  EXPECT_FALSE(p.contains(ts(6)));
}

TEST(IntervalTest, ClosedContains) {
  const Interval iv{ts(2), ts(5)};
  EXPECT_TRUE(iv.contains(ts(2)));
  EXPECT_TRUE(iv.contains(ts(5)));
  EXPECT_FALSE(iv.contains(ts(1)));
  EXPECT_FALSE(iv.contains(ts(6)));
  EXPECT_EQ(iv.size(), 4u);
}

TEST(IntervalTest, ContainsInterval) {
  const Interval outer{ts(1), ts(10)};
  EXPECT_TRUE(outer.contains(Interval{ts(3), ts(7)}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Interval{ts(0), ts(4)}));
  EXPECT_TRUE(outer.contains(Interval::empty()));
}

TEST(IntervalTest, Overlaps) {
  const Interval a{ts(1), ts(5)};
  EXPECT_TRUE(a.overlaps(Interval{ts(5), ts(9)}));   // shared endpoint
  EXPECT_TRUE(a.overlaps(Interval{ts(0), ts(1)}));
  EXPECT_FALSE(a.overlaps(Interval{ts(6), ts(9)}));
  EXPECT_FALSE(a.overlaps(Interval::empty()));
}

TEST(IntervalTest, Adjacent) {
  const Interval a{ts(1), ts(5)};
  EXPECT_TRUE(a.adjacent(Interval{ts(6), ts(9)}));
  EXPECT_TRUE((Interval{ts(6), ts(9)}).adjacent(a));
  EXPECT_FALSE(a.adjacent(Interval{ts(7), ts(9)}));
  EXPECT_FALSE(a.adjacent(Interval{ts(5), ts(9)}));  // overlap, not adjacency
}

TEST(IntervalTest, AdjacentAtInfinityIsSafe) {
  const Interval top{ts(5), Timestamp::infinity()};
  EXPECT_FALSE(top.adjacent(Interval{ts(1), ts(2)}));
  EXPECT_TRUE((Interval{ts(1), ts(4)}).adjacent(top));
}

TEST(IntervalTest, Intersect) {
  const Interval a{ts(1), ts(6)};
  const Interval b{ts(4), ts(9)};
  EXPECT_EQ(a.intersect(b), (Interval{ts(4), ts(6)}));
  EXPECT_TRUE(a.intersect(Interval{ts(7), ts(9)}).is_empty());
  EXPECT_TRUE(a.intersect(Interval::empty()).is_empty());
}

TEST(IntervalTest, Hull) {
  const Interval a{ts(1), ts(3)};
  const Interval b{ts(7), ts(9)};
  EXPECT_EQ(a.hull(b), (Interval{ts(1), ts(9)}));
  EXPECT_EQ(a.hull(Interval::empty()), a);
  EXPECT_EQ(Interval::empty().hull(b), b);
}

TEST(IntervalTest, AllCoversEverything) {
  const Interval all = Interval::all();
  EXPECT_TRUE(all.contains(Timestamp::min()));
  EXPECT_TRUE(all.contains(Timestamp::infinity()));
  EXPECT_TRUE(all.contains(ts(123456)));
}

TEST(IntervalTest, SizeSaturatesOnFullLine) {
  EXPECT_EQ(Interval::all().size(),
            std::numeric_limits<Timestamp::Rep>::max());
}

TEST(IntervalTest, EmptyIntervalsCompareEqual) {
  EXPECT_EQ((Interval{ts(9), ts(2)}), Interval::empty());
  EXPECT_EQ(Interval{}, Interval::empty());
}

}  // namespace
}  // namespace mvtl
