#include "common/interval_set.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace mvtl {
namespace {

Timestamp ts(std::uint64_t raw) { return Timestamp{raw}; }
Interval iv(std::uint64_t lo, std::uint64_t hi) {
  return Interval{ts(lo), ts(hi)};
}

TEST(IntervalSetTest, InsertDisjointKeepsBoth) {
  IntervalSet s;
  s.insert(iv(1, 3));
  s.insert(iv(7, 9));
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.contains(ts(2)));
  EXPECT_TRUE(s.contains(ts(8)));
  EXPECT_FALSE(s.contains(ts(5)));
}

TEST(IntervalSetTest, InsertCoalescesOverlap) {
  IntervalSet s;
  s.insert(iv(1, 5));
  s.insert(iv(3, 9));
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(iv(1, 9)));
}

TEST(IntervalSetTest, InsertCoalescesAdjacency) {
  // Interval compression (§6): [1,3] + [4,6] is one lock record.
  IntervalSet s;
  s.insert(iv(1, 3));
  s.insert(iv(4, 6));
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(iv(1, 6)));
}

TEST(IntervalSetTest, InsertBridgesMultiple) {
  IntervalSet s;
  s.insert(iv(1, 2));
  s.insert(iv(5, 6));
  s.insert(iv(9, 10));
  s.insert(iv(3, 8));  // bridges all three
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(iv(1, 10)));
}

TEST(IntervalSetTest, SubtractSplits) {
  IntervalSet s(iv(1, 10));
  s.subtract(iv(4, 6));
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.contains(iv(1, 3)));
  EXPECT_TRUE(s.contains(iv(7, 10)));
  EXPECT_FALSE(s.contains(ts(5)));
}

TEST(IntervalSetTest, SubtractEdges) {
  IntervalSet s(iv(5, 10));
  s.subtract(iv(1, 5));
  s.subtract(iv(10, 12));
  EXPECT_TRUE(s.contains(iv(6, 9)));
  EXPECT_FALSE(s.contains(ts(5)));
  EXPECT_FALSE(s.contains(ts(10)));
}

TEST(IntervalSetTest, SubtractEverything) {
  IntervalSet s(iv(3, 8));
  s.subtract(Interval::all());
  EXPECT_TRUE(s.is_empty());
}

TEST(IntervalSetTest, IntersectSets) {
  IntervalSet a;
  a.insert(iv(1, 5));
  a.insert(iv(10, 20));
  IntervalSet b;
  b.insert(iv(4, 12));
  b.insert(iv(18, 25));
  const IntervalSet meet = a.intersect(b);
  EXPECT_EQ(meet.interval_count(), 3u);
  EXPECT_TRUE(meet.contains(iv(4, 5)));
  EXPECT_TRUE(meet.contains(iv(10, 12)));
  EXPECT_TRUE(meet.contains(iv(18, 20)));
  EXPECT_FALSE(meet.contains(ts(7)));
}

TEST(IntervalSetTest, Complement) {
  IntervalSet s;
  s.insert(iv(2, 4));
  s.insert(iv(8, 9));
  const IntervalSet c = s.complement();
  EXPECT_TRUE(c.contains(iv(0, 1)));
  EXPECT_TRUE(c.contains(iv(5, 7)));
  EXPECT_TRUE(c.contains(Interval{ts(10), Timestamp::infinity()}));
  EXPECT_FALSE(c.contains(ts(3)));
  EXPECT_FALSE(c.contains(ts(8)));
}

TEST(IntervalSetTest, ComplementOfEmptyIsAll) {
  EXPECT_EQ(IntervalSet{}.complement(), IntervalSet::all());
}

TEST(IntervalSetTest, ComplementIsInvolution) {
  IntervalSet s;
  s.insert(iv(0, 3));
  s.insert(iv(10, 20));
  s.insert(Interval{ts(100), Timestamp::infinity()});
  EXPECT_EQ(s.complement().complement(), s);
}

TEST(IntervalSetTest, FloorCeiling) {
  IntervalSet s;
  s.insert(iv(5, 8));
  s.insert(iv(12, 15));
  EXPECT_EQ(s.floor(ts(7)), ts(7));
  EXPECT_EQ(s.floor(ts(10)), ts(8));
  EXPECT_EQ(s.floor(ts(4)), std::nullopt);
  EXPECT_EQ(s.ceiling(ts(9)), ts(12));
  EXPECT_EQ(s.ceiling(ts(13)), ts(13));
  EXPECT_EQ(s.ceiling(ts(16)), std::nullopt);
}

TEST(IntervalSetTest, MinMaxCardinality) {
  IntervalSet s;
  s.insert(iv(3, 5));
  s.insert(iv(9, 9));
  EXPECT_EQ(s.min(), ts(3));
  EXPECT_EQ(s.max(), ts(9));
  EXPECT_EQ(s.cardinality(), 4u);
}

TEST(IntervalSetTest, UniteIsUnion) {
  IntervalSet a(iv(1, 4));
  IntervalSet b(iv(3, 8));
  const IntervalSet u = a.unite(b);
  EXPECT_TRUE(u.contains(iv(1, 8)));
  EXPECT_EQ(u.interval_count(), 1u);
}

// ---------------------------------------------------------------------------
// Property test: random operations against a reference model over a small
// discrete domain.
// ---------------------------------------------------------------------------

class IntervalSetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetModelTest, MatchesReferenceModel) {
  constexpr std::uint64_t kDomain = 64;
  Rng rng(GetParam());
  IntervalSet sut;
  std::set<std::uint64_t> model;

  for (int step = 0; step < 300; ++step) {
    const std::uint64_t lo = rng.next_below(kDomain);
    const std::uint64_t hi = lo + rng.next_below(kDomain - lo);
    const Interval range = iv(lo, hi);
    const int op = static_cast<int>(rng.next_below(3));
    if (op == 0) {
      sut.insert(range);
      for (std::uint64_t v = lo; v <= hi; ++v) model.insert(v);
    } else if (op == 1) {
      sut.subtract(range);
      for (std::uint64_t v = lo; v <= hi; ++v) model.erase(v);
    } else {
      IntervalSet other(range);
      sut = sut.intersect(other);
      std::set<std::uint64_t> kept;
      for (std::uint64_t v : model) {
        if (v >= lo && v <= hi) kept.insert(v);
      }
      model = std::move(kept);
    }
    // Full pointwise agreement over the domain.
    for (std::uint64_t v = 0; v < kDomain; ++v) {
      ASSERT_EQ(sut.contains(ts(v)), model.count(v) != 0)
          << "step " << step << " point " << v;
    }
    // Canonical form: sorted, disjoint, non-adjacent.
    const auto& ivs = sut.intervals();
    for (std::size_t i = 0; i + 1 < ivs.size(); ++i) {
      ASSERT_LT(ivs[i].hi().raw() + 1, ivs[i + 1].lo().raw());
    }
    ASSERT_EQ(sut.cardinality(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mvtl
