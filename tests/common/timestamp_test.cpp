#include "common/timestamp.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mvtl {
namespace {

TEST(TimestampTest, PacksTickAndProcess) {
  const Timestamp t = Timestamp::make(42, 7);
  EXPECT_EQ(t.tick(), 42u);
  EXPECT_EQ(t.process(), 7u);
}

TEST(TimestampTest, LexicographicOrder) {
  // (v, p) ordered lexicographically (§4.1): tick dominates, process
  // breaks ties.
  EXPECT_LT(Timestamp::make(1, 65535), Timestamp::make(2, 0));
  EXPECT_LT(Timestamp::make(5, 3), Timestamp::make(5, 4));
  EXPECT_EQ(Timestamp::make(5, 3), Timestamp::make(5, 3));
}

TEST(TimestampTest, UniquePerTickProcessPair) {
  std::set<Timestamp::Rep> raws;
  for (std::uint64_t tick = 0; tick < 10; ++tick) {
    for (ProcessId p = 0; p < 10; ++p) {
      raws.insert(Timestamp::make(tick, p).raw());
    }
  }
  EXPECT_EQ(raws.size(), 100u);
}

TEST(TimestampTest, MinAndInfinity) {
  EXPECT_TRUE(Timestamp::min().is_min());
  EXPECT_TRUE(Timestamp::infinity().is_infinity());
  EXPECT_LT(Timestamp::min(), Timestamp::infinity());
  EXPECT_LT(Timestamp::make(Timestamp::kMaxTick, 65534),
            Timestamp::infinity());
}

TEST(TimestampTest, NextPrevAreInverse) {
  const Timestamp t = Timestamp::make(10, 3);
  EXPECT_EQ(t.next().prev(), t);
  EXPECT_EQ(t.prev().next(), t);
}

TEST(TimestampTest, NextSaturatesAtInfinity) {
  EXPECT_EQ(Timestamp::infinity().next(), Timestamp::infinity());
}

TEST(TimestampTest, PrevSaturatesAtZero) {
  EXPECT_EQ(Timestamp::min().prev(), Timestamp::min());
}

TEST(TimestampTest, NextCrossesProcessBoundary) {
  // The discrete timeline is dense across (tick, process) pairs.
  const Timestamp last_proc = Timestamp::make(3, 65535);
  EXPECT_EQ(last_proc.next(), Timestamp::make(4, 0));
}

TEST(TimestampTest, PlusTicksKeepsProcess) {
  const Timestamp t = Timestamp::make(100, 9);
  EXPECT_EQ(t.plus_ticks(5), Timestamp::make(105, 9));
  EXPECT_EQ(t.plus_ticks(-40), Timestamp::make(60, 9));
}

TEST(TimestampTest, PlusTicksSaturates) {
  const Timestamp t = Timestamp::make(10, 2);
  EXPECT_EQ(t.plus_ticks(-100), Timestamp::make(0, 2));
  const Timestamp big = Timestamp::make(Timestamp::kMaxTick - 1, 2);
  EXPECT_EQ(big.plus_ticks(100), Timestamp::make(Timestamp::kMaxTick, 2));
}

TEST(TimestampTest, ToStringForms) {
  EXPECT_EQ(Timestamp::min().to_string(), "0");
  EXPECT_EQ(Timestamp::infinity().to_string(), "+inf");
  EXPECT_EQ(Timestamp::make(12, 3).to_string(), "12.3");
}

TEST(TimestampTest, MinMaxHelpers) {
  const Timestamp a = Timestamp::make(1, 1);
  const Timestamp b = Timestamp::make(2, 0);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(max(a, b), b);
}

}  // namespace
}  // namespace mvtl
