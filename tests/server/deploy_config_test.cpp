// Cluster deployment config parser (src/server/deploy.hpp): round-trip,
// strict rejection of malformed input with actionable messages, and the
// mapping into ClusterConfig.
#include "server/deploy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mvtl {
namespace {

constexpr const char* kGood = R"(
# 2 groups x 3 replicas
protocol = mvtil-late
replication_factor = 3
key_space = 2000          # trailing comment
delta_ticks = 7000
suspect_timeout_ms = 300
lock_timeout_us = 15000
server_threads = 2
follower_reads = false
floor_lag_ticks = 30000
store_shards = 32
endpoint = 127.0.0.1:7001
endpoint = 127.0.0.1:7002
endpoint = 127.0.0.1:7003
endpoint = 10.0.0.5:7001
endpoint = 10.0.0.5:7002
endpoint = 10.0.0.5:7003
)";

/// The invalid_argument message a parse produces, "" when it succeeds.
std::string parse_error(const std::string& text) {
  try {
    parse_deploy_config(text);
    return {};
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
}

TEST(DeployConfig, ParsesEveryKey) {
  const DeployConfig c = parse_deploy_config(kGood);
  EXPECT_EQ(c.protocol, DistProtocol::kMvtilLate);
  EXPECT_EQ(c.replication_factor, 3u);
  EXPECT_EQ(c.key_space, 2'000u);
  EXPECT_EQ(c.delta_ticks, 7'000u);
  EXPECT_EQ(c.suspect_timeout.count(), 300);
  EXPECT_EQ(c.lock_timeout.count(), 15'000);
  EXPECT_EQ(c.server_threads, 2u);
  EXPECT_FALSE(c.follower_reads);
  EXPECT_EQ(c.floor_lag_ticks, 30'000u);
  EXPECT_EQ(c.store_shards, 32u);
  ASSERT_EQ(c.endpoints.size(), 6u);
  EXPECT_EQ(c.groups(), 2u);
  EXPECT_EQ(c.endpoints[0].host, "127.0.0.1");
  EXPECT_EQ(c.endpoints[0].port, 7'001);
  EXPECT_EQ(c.endpoints[3].host, "10.0.0.5");
}

TEST(DeployConfig, EncodeRoundTrips) {
  const DeployConfig a = parse_deploy_config(kGood);
  const DeployConfig b = parse_deploy_config(a.encode());
  EXPECT_EQ(a.encode(), b.encode());
  EXPECT_EQ(b.protocol, DistProtocol::kMvtilLate);
  EXPECT_EQ(b.endpoints.size(), 6u);
  EXPECT_EQ(b.endpoints[5].port, 7'003);
}

TEST(DeployConfig, RejectsUnknownKeyNamingLineAndKnownKeys) {
  const std::string err = parse_error(
      "replication_factor = 1\n"
      "sus_timeout = 10\n"
      "endpoint = 127.0.0.1:7001\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("unknown key 'sus_timeout'"), std::string::npos) << err;
  EXPECT_NE(err.find("suspect_timeout_ms"), std::string::npos)
      << "should list the known keys: " << err;
}

TEST(DeployConfig, RejectsReplicationFactorNotDividingEndpointCount) {
  const std::string err = parse_error(
      "replication_factor = 3\n"
      "endpoint = 127.0.0.1:7001\n"
      "endpoint = 127.0.0.1:7002\n"
      "endpoint = 127.0.0.1:7003\n"
      "endpoint = 127.0.0.1:7004\n");
  EXPECT_NE(err.find("replication_factor 3"), std::string::npos) << err;
  EXPECT_NE(err.find("does not divide the endpoint count 4"),
            std::string::npos)
      << err;
}

TEST(DeployConfig, RejectsDuplicateEndpointNamingBothIndices) {
  const std::string err = parse_error(
      "replication_factor = 1\n"
      "endpoint = 127.0.0.1:7001\n"
      "endpoint = 127.0.0.1:7002\n"
      "endpoint = 127.0.0.1:7001\n");
  EXPECT_NE(err.find("duplicate endpoint 127.0.0.1:7001"), std::string::npos)
      << err;
  EXPECT_NE(err.find("indices 0 and 2"), std::string::npos) << err;
}

TEST(DeployConfig, RejectsMalformedValues) {
  EXPECT_NE(parse_error("endpoint = 127.0.0.1\n").find("host:port"),
            std::string::npos);
  EXPECT_NE(parse_error("endpoint = 127.0.0.1:0\n").find("[1, 65535]"),
            std::string::npos);
  EXPECT_NE(parse_error("endpoint = 127.0.0.1:99999\n").find("[1, 65535]"),
            std::string::npos);
  EXPECT_NE(parse_error("protocol = paxos\nendpoint = 127.0.0.1:7001\n")
                .find("unknown protocol 'paxos'"),
            std::string::npos);
  EXPECT_NE(parse_error("key_space = -4\nendpoint = 127.0.0.1:7001\n")
                .find("non-negative integer"),
            std::string::npos);
  EXPECT_NE(parse_error("follower_reads = yes\nendpoint = 127.0.0.1:7001\n")
                .find("true/false"),
            std::string::npos);
  EXPECT_NE(parse_error("just some words\n").find("expected 'key = value'"),
            std::string::npos);
  EXPECT_NE(parse_error("").find("no endpoints"), std::string::npos);
  EXPECT_NE(parse_error("replication_factor = 0\n"
                        "endpoint = 127.0.0.1:7001\n")
                .find("replication_factor must be >= 1"),
            std::string::npos);
}

TEST(DeployConfig, OverridesApplyButCannotTouchLayout) {
  DeployConfig c = parse_deploy_config(
      "replication_factor = 1\nendpoint = 127.0.0.1:7001\n");
  apply_deploy_override(c, "key_space", "555");
  apply_deploy_override(c, "protocol", "to");
  EXPECT_EQ(c.key_space, 555u);
  EXPECT_EQ(c.protocol, DistProtocol::kTo);
  EXPECT_THROW(apply_deploy_override(c, "endpoint", "127.0.0.1:9999"),
               std::invalid_argument);
  EXPECT_THROW(apply_deploy_override(c, "bogus", "1"), std::invalid_argument);
}

TEST(DeployConfig, MapsIntoClusterConfig) {
  const DeployConfig d = parse_deploy_config(kGood);
  const ClusterConfig server = d.to_cluster_config({0, 1});
  EXPECT_EQ(server.servers, 2u);  // shard groups, not processes
  EXPECT_EQ(server.replication_factor, 3u);
  EXPECT_EQ(server.endpoints.size(), 6u);
  EXPECT_EQ(server.local_servers, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(server.transport, TransportKind::kTcp);
  EXPECT_EQ(server.key_space, 2'000u);
  EXPECT_EQ(server.suspect_timeout.count(), 300);

  const ClusterConfig client = d.to_cluster_config({});
  EXPECT_TRUE(client.local_servers.empty());
  EXPECT_EQ(client.endpoints.size(), 6u);
}

TEST(DeployConfig, LoadNamesTheFileOnParseErrors) {
  EXPECT_THROW(load_deploy_config("/nonexistent/cluster.conf"),
               std::runtime_error);
}

}  // namespace
}  // namespace mvtl
