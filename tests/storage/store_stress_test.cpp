// Concurrent Store stress: readers, writers, and purge_below hammering
// a hot keyset at once. This is the TSan target for the lock-free hot
// path — seqlock version resolution, RCU index lookups, and epoch-based
// reclamation all race here on purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.hpp"
#include "common/rng.hpp"
#include "storage/store.hpp"

namespace mvtl {
namespace {

using std::chrono::milliseconds;

constexpr std::size_t kKeys = 16;

std::string key_name(std::uint64_t i) {
  return "key-" + std::to_string(i % kKeys);
}

// Values encode the version's timestamp, so any torn or misresolved
// read is detectable: a view's value must name exactly its own ts.
std::string value_for(std::uint64_t ts_raw) {
  return "value-at-" + std::to_string(ts_raw);
}

TEST(StoreStressTest, ReadersWritersAndPurgeAgree) {
  Store store;
  std::atomic<std::uint64_t> next_ts{1};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> reads_ok{0};

  auto writer = [&](TxId tx_base) {
    std::uint64_t installs = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t t = next_ts.fetch_add(1) * 10;
      KeyState& ks = store.key_state(key_name(t / 10));
      ks.versions.install(Timestamp{t}, value_for(t), tx_base + installs++);
    }
  };

  auto reader = [&](std::uint64_t seed) {
    Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t hi = next_ts.load(std::memory_order_relaxed) * 10;
      const Timestamp bound{rng.next_below(hi) + 2};
      KeyState& ks = store.key_state(key_name(rng.next_below(kKeys)));
      ebr::Guard g;
      const VersionChain::Resolved r = ks.versions.resolve_at(bound, g);
      if (!r.safe) continue;  // below the purge floor; nothing to check
      if (r.view.has_value) {
        // The invariants a torn read would break: the resolved version
        // is strictly below the bound and its value names its own ts.
        if (r.view.ts >= bound ||
            r.view.value != value_for(r.view.ts.raw())) {
          torn.fetch_add(1);
        } else {
          reads_ok.fetch_add(1);
        }
      }
    }
  };

  auto purger = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Trail the writers: purge everything but the most recent ~200
      // installs, forcing constant chain rebuilds + epoch retirements.
      const std::uint64_t cur = next_ts.load(std::memory_order_relaxed);
      if (cur > 200) store.purge_below(Timestamp{(cur - 200) * 10});
      std::this_thread::sleep_for(milliseconds(1));
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back(writer, 1'000'000 * (i + 1));
  }
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(reader, 77 + i);
  }
  threads.emplace_back(purger);

  std::this_thread::sleep_for(milliseconds(400));
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);

  // Versions survive purging: every key still resolves at the top.
  const std::uint64_t top = next_ts.load() * 10 + 1;
  std::uint64_t resolved = 0;
  ebr::Guard g;
  store.for_each([&](const Key&, KeyState& ks) {
    if (ks.versions.resolve_at(Timestamp{top}, g).view.has_value) ++resolved;
  });
  EXPECT_EQ(resolved, kKeys);
}

TEST(StoreStressTest, PurgeChurnDoesNotCliffThroughput) {
  // purge_below must not stall the read or install paths (it takes no
  // per-key write-path latch). Compare combined reader+writer ops with
  // and without a purger hammering the same keys. The bound is very lax
  // — it catches a cliff (purge serializing the hot path), not noise.
  Store store;
  std::atomic<std::uint64_t> next_ts{1};

  auto run_phase = [&](bool with_purge) {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 2; ++i) {
      threads.emplace_back([&, i] {
        std::uint64_t installs = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t t = next_ts.fetch_add(1) * 10;
          KeyState& ks = store.key_state(key_name(t / 10));
          ks.versions.install(Timestamp{t}, value_for(t),
                              10'000'000 * (i + 1) + installs++);
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (int i = 0; i < 2; ++i) {
      threads.emplace_back([&, i] {
        Rng rng(123 + i);
        std::uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t hi =
              next_ts.load(std::memory_order_relaxed) * 10;
          KeyState& ks = store.key_state(key_name(rng.next_below(kKeys)));
          ebr::Guard g;
          sink += ks.versions
                      .resolve_at(Timestamp{rng.next_below(hi) + 2}, g)
                      .attempts;
          ops.fetch_add(1, std::memory_order_relaxed);
        }
        EXPECT_GT(sink, 0u);
      });
    }
    if (with_purge) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t cur = next_ts.load(std::memory_order_relaxed);
          if (cur > 100) store.purge_below(Timestamp{(cur - 100) * 10});
        }
      });
    }
    std::this_thread::sleep_for(milliseconds(300));
    stop.store(true);
    for (auto& t : threads) t.join();
    return ops.load();
  };

  const std::uint64_t baseline = run_phase(false);
  const std::uint64_t churned = run_phase(true);
  ASSERT_GT(baseline, 0u);
  EXPECT_GT(churned, baseline / 5)
      << "purge churn collapsed hot-path throughput: " << churned << " vs "
      << baseline;
}

}  // namespace
}  // namespace mvtl
