#include "storage/lock_ops.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace mvtl {
namespace {

using lock_ops::Options;
using lock_ops::Outcome;

Timestamp ts(std::uint64_t raw) { return Timestamp{raw}; }
Interval iv(std::uint64_t lo, std::uint64_t hi) {
  return Interval{ts(lo), ts(hi)};
}

Options nowait() {
  Options o;
  o.wait = false;
  return o;
}

Options waiting(std::chrono::microseconds timeout =
                    std::chrono::microseconds{50'000}) {
  Options o;
  o.wait = true;
  o.timeout = timeout;
  return o;
}

TEST(LockOpsReadTest, ReadsBottomAndLocksInterval) {
  KeyState ks;
  const auto r = lock_ops::acquire_read_upto(ks, 1, ts(10), waiting());
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_EQ(r.tr, Timestamp::min());
  EXPECT_FALSE(r.value.has_value());
  EXPECT_EQ(r.upper, ts(10));
  EXPECT_TRUE(ks.locks.holds(1, LockMode::kRead, ts(1)));
  EXPECT_TRUE(ks.locks.holds(1, LockMode::kRead, ts(10)));
}

TEST(LockOpsReadTest, ReadsLatestCommittedVersion) {
  KeyState ks;
  ks.versions.install(ts(3), "v3", 42);
  const auto r = lock_ops::acquire_read_upto(ks, 1, ts(10), waiting());
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_EQ(r.tr, ts(3));
  EXPECT_EQ(*r.value, "v3");
  EXPECT_EQ(r.writer, 42u);
  EXPECT_FALSE(ks.locks.holds(1, LockMode::kRead, ts(3)));
  EXPECT_TRUE(ks.locks.holds(1, LockMode::kRead, ts(4)));
}

TEST(LockOpsReadTest, NonWaitingStopsAtForeignWriteLock) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kWrite, IntervalSet{Interval::point(ts(6))});
  }
  const auto r = lock_ops::acquire_read_upto(ks, 1, ts(10), nowait());
  EXPECT_EQ(r.outcome, Outcome::kPartial);
  EXPECT_EQ(r.tr, Timestamp::min());
  EXPECT_EQ(r.upper, ts(5));
  EXPECT_TRUE(ks.locks.holds(1, LockMode::kRead, ts(5)));
  EXPECT_FALSE(ks.locks.holds(1, LockMode::kRead, ts(6)));
}

TEST(LockOpsReadTest, NonWaitingBlockedImmediatelyGetsNothing) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kWrite, IntervalSet{iv(1, 20)});
  }
  const auto r = lock_ops::acquire_read_upto(ks, 1, ts(10), nowait());
  EXPECT_EQ(r.outcome, Outcome::kPartial);
  EXPECT_EQ(r.upper, r.tr);  // no locks at all
}

TEST(LockOpsReadTest, WaitingTimesOutOnHeldWriteLock) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kWrite, IntervalSet{Interval::point(ts(6))});
  }
  const auto r = lock_ops::acquire_read_upto(
      ks, 1, ts(10), waiting(std::chrono::microseconds{2'000}));
  EXPECT_EQ(r.outcome, Outcome::kTimeout);
  // Timed-out read releases the prefix it was holding.
  EXPECT_FALSE(ks.locks.holds(1, LockMode::kRead, ts(5)));
}

TEST(LockOpsReadTest, WaitingProceedsWhenWriterReleases) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kWrite, IntervalSet{Interval::point(ts(6))});
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    lock_ops::release_writes(ks, 9);
  });
  const auto r = lock_ops::acquire_read_upto(ks, 1, ts(10), waiting());
  releaser.join();
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_EQ(r.upper, ts(10));
}

TEST(LockOpsReadTest, RestartsWhenVersionCommitsInsideRange) {
  // A writer holds an unfrozen lock at 6; while the reader waits, the
  // writer commits (freeze + install). The reader must restart and return
  // the *new* version.
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kWrite, IntervalSet{Interval::point(ts(6))});
  }
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    lock_ops::commit_key(ks, 9, ts(6), "v6");
  });
  const auto r = lock_ops::acquire_read_upto(ks, 1, ts(10), waiting());
  committer.join();
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_EQ(r.tr, ts(6));
  EXPECT_EQ(*r.value, "v6");
  EXPECT_TRUE(ks.locks.holds(1, LockMode::kRead, ts(7)));
  EXPECT_FALSE(ks.locks.holds(1, LockMode::kRead, ts(5)));
}

TEST(LockOpsReadTest, PurgedBoundAborts) {
  KeyState ks;
  ks.versions.install(ts(2), "a", 1);
  ks.versions.install(ts(5), "b", 2);
  {
    std::lock_guard guard(ks.mu);
    ks.versions.purge_below(ts(8));
    ks.locks.purge_below(ts(8));
  }
  const auto r = lock_ops::acquire_read_upto(ks, 1, ts(4), waiting());
  EXPECT_EQ(r.outcome, Outcome::kPurged);
}

TEST(LockOpsWriteTest, AcquiresWholeFreeSet) {
  KeyState ks;
  IntervalSet want;
  want.insert(iv(5, 10));
  want.insert(iv(20, 25));
  const auto r = lock_ops::acquire_write_set(ks, 1, want, waiting());
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_TRUE(r.acquired.contains(iv(5, 10)));
  EXPECT_TRUE(r.acquired.contains(iv(20, 25)));
}

TEST(LockOpsWriteTest, FrozenPointsExcludedWithoutBlocking) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kWrite, IntervalSet{Interval::point(ts(7))});
    ks.locks.freeze(9, LockMode::kWrite,
                    IntervalSet{Interval::point(ts(7))});
  }
  const auto r =
      lock_ops::acquire_write_set(ks, 1, IntervalSet{iv(5, 10)}, waiting());
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_TRUE(r.acquired.contains(iv(5, 6)));
  EXPECT_TRUE(r.acquired.contains(iv(8, 10)));
  EXPECT_FALSE(r.acquired.contains(ts(7)));
}

TEST(LockOpsWriteTest, NonWaitingReturnsPartial) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kRead, IntervalSet{iv(8, 9)});
  }
  const auto r =
      lock_ops::acquire_write_set(ks, 1, IntervalSet{iv(5, 10)}, nowait());
  EXPECT_EQ(r.outcome, Outcome::kPartial);
  EXPECT_TRUE(r.acquired.contains(iv(5, 7)));
  EXPECT_TRUE(r.acquired.contains(ts(10)));
  EXPECT_FALSE(r.acquired.contains(ts(8)));
}

TEST(LockOpsWriteTest, WaitingSucceedsAfterReaderGc) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kRead, IntervalSet{iv(8, 9)});
  }
  std::thread gc([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    lock_ops::release_all(ks, 9);
  });
  const auto r =
      lock_ops::acquire_write_set(ks, 1, IntervalSet{iv(5, 10)}, waiting());
  gc.join();
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_TRUE(r.acquired.contains(iv(5, 10)));
}

TEST(LockOpsWriteTest, WaitingStopsWhenConflictFreezes) {
  // A reader freezes its lock (committed): the waiting writer must give
  // up on those points and return the remainder.
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kRead, IntervalSet{iv(8, 9)});
  }
  std::thread freezer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    lock_ops::freeze_read_range(ks, 9, ts(7), ts(9));
  });
  const auto r =
      lock_ops::acquire_write_set(ks, 1, IntervalSet{iv(5, 10)}, waiting());
  freezer.join();
  EXPECT_EQ(r.outcome, Outcome::kAcquired);
  EXPECT_TRUE(r.acquired.contains(iv(5, 7)));
  EXPECT_TRUE(r.acquired.contains(ts(10)));
  EXPECT_FALSE(r.acquired.contains(ts(8)));
  EXPECT_FALSE(r.acquired.contains(ts(9)));
}

TEST(LockOpsWritePointTest, NonWaitingFailsOnForeignRead) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kRead, IntervalSet{Interval::point(ts(5))});
  }
  EXPECT_FALSE(lock_ops::acquire_write_point(
      ks, 1, ts(5), /*wait_on_conflicts=*/false,
      std::chrono::microseconds{1'000}));
  EXPECT_TRUE(lock_ops::acquire_write_point(
      ks, 1, ts(6), /*wait_on_conflicts=*/false,
      std::chrono::microseconds{1'000}));
}

TEST(LockOpsWritePointTest, WaitingSucceedsAfterRelease) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kRead, IntervalSet{Interval::point(ts(5))});
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
    lock_ops::release_all(ks, 9);
  });
  EXPECT_TRUE(lock_ops::acquire_write_point(
      ks, 1, ts(5), /*wait_on_conflicts=*/true,
      std::chrono::microseconds{100'000}));
  releaser.join();
}

TEST(LockOpsWritePointTest, FrozenPointFailsEvenWhenWaiting) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(9, LockMode::kRead, IntervalSet{Interval::point(ts(5))});
    ks.locks.freeze(9, LockMode::kRead, IntervalSet{Interval::point(ts(5))});
  }
  EXPECT_FALSE(lock_ops::acquire_write_point(
      ks, 1, ts(5), /*wait_on_conflicts=*/true,
      std::chrono::microseconds{100'000}));
}

TEST(LockOpsCommitTest, CommitKeyFreezesAndInstalls) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(1, LockMode::kWrite, IntervalSet{iv(5, 10)});
  }
  lock_ops::commit_key(ks, 1, ts(7), "v7");
  EXPECT_TRUE(ks.versions.has_version_at(ts(7)));
  {
    ebr::Guard g;
    EXPECT_EQ(ks.versions.latest_before(ts(8), g).value, "v7");
  }
  // The commit point is frozen; the rest of the write locks are not.
  const ProbeResult p = ks.locks.probe(2, LockMode::kWrite, iv(5, 10));
  EXPECT_TRUE(p.permanent.contains(ts(7)));
  EXPECT_TRUE(p.blocked.contains(ts(5)));
}

TEST(LockOpsCommitTest, FreezeReadRangeMakesWriterSkip) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(1, LockMode::kRead, IntervalSet{iv(1, 9)});
  }
  lock_ops::freeze_read_range(ks, 1, ts(2), ts(6));  // freezes [3,6]
  const ProbeResult p = ks.locks.probe(2, LockMode::kWrite, iv(1, 9));
  EXPECT_TRUE(p.permanent.contains(iv(3, 6)));
  EXPECT_TRUE(p.blocked.contains(iv(1, 2)));
  EXPECT_TRUE(p.blocked.contains(iv(7, 9)));
}

}  // namespace
}  // namespace mvtl
