#include "storage/lock_state.hpp"

#include <gtest/gtest.h>

namespace mvtl {
namespace {

Timestamp ts(std::uint64_t raw) { return Timestamp{raw}; }
Interval iv(std::uint64_t lo, std::uint64_t hi) {
  return Interval{ts(lo), ts(hi)};
}

TEST(LockStateTest, FreshStateGrantsEverything) {
  LockState ls;
  const ProbeResult p = ls.probe(1, LockMode::kWrite, iv(1, 100));
  EXPECT_TRUE(p.available.contains(iv(1, 100)));
  EXPECT_TRUE(p.blocked.is_empty());
  EXPECT_TRUE(p.permanent.is_empty());
}

TEST(LockStateTest, SharedReadersDoNotConflict) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{iv(5, 10)});
  const ProbeResult p = ls.probe(2, LockMode::kRead, iv(1, 20));
  EXPECT_TRUE(p.available.contains(iv(1, 20)));
  EXPECT_TRUE(p.blocked.is_empty());
}

TEST(LockStateTest, ReadBlocksForeignWrite) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{iv(5, 10)});
  const ProbeResult p = ls.probe(2, LockMode::kWrite, iv(1, 20));
  EXPECT_TRUE(p.blocked.contains(iv(5, 10)));
  EXPECT_TRUE(p.available.contains(iv(1, 4)));
  EXPECT_TRUE(p.available.contains(iv(11, 20)));
  ASSERT_EQ(p.blockers.size(), 1u);
  EXPECT_EQ(p.blockers[0], 1u);
}

TEST(LockStateTest, WriteBlocksForeignReadAndWrite) {
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{iv(7, 9)});
  EXPECT_TRUE(ls.probe(2, LockMode::kRead, iv(1, 20)).blocked.contains(
      iv(7, 9)));
  EXPECT_TRUE(ls.probe(2, LockMode::kWrite, iv(1, 20)).blocked.contains(
      iv(7, 9)));
}

TEST(LockStateTest, OwnLocksNeverConflict) {
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{iv(7, 9)});
  ls.grant(1, LockMode::kRead, IntervalSet{iv(1, 6)});
  const ProbeResult pr = ls.probe(1, LockMode::kRead, iv(1, 12));
  EXPECT_TRUE(pr.available.contains(iv(1, 12)));
  const ProbeResult pw = ls.probe(1, LockMode::kWrite, iv(1, 12));
  EXPECT_TRUE(pw.available.contains(iv(1, 12)));
}

TEST(LockStateTest, UpgradeBlockedByOtherReader) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{Interval::point(ts(5))});
  ls.grant(2, LockMode::kRead, IntervalSet{Interval::point(ts(5))});
  const ProbeResult p = ls.probe(1, LockMode::kWrite, Interval::point(ts(5)));
  EXPECT_TRUE(p.blocked.contains(ts(5)));
}

TEST(LockStateTest, FrozenWriteIsPermanentAndFlagged) {
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{Interval::point(ts(5))});
  ls.freeze(1, LockMode::kWrite, IntervalSet{Interval::point(ts(5))});
  const ProbeResult pr = ls.probe(2, LockMode::kRead, iv(1, 10));
  EXPECT_TRUE(pr.permanent.contains(ts(5)));
  EXPECT_TRUE(pr.hit_frozen_write);
  const ProbeResult pw = ls.probe(2, LockMode::kWrite, iv(1, 10));
  EXPECT_TRUE(pw.permanent.contains(ts(5)));
}

TEST(LockStateTest, FrozenReadBlocksWritesButNotReads) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{iv(3, 6)});
  ls.freeze(1, LockMode::kRead, IntervalSet{iv(3, 6)});
  const ProbeResult pr = ls.probe(2, LockMode::kRead, iv(1, 10));
  EXPECT_TRUE(pr.available.contains(iv(1, 10)));
  EXPECT_FALSE(pr.hit_frozen_write);
  const ProbeResult pw = ls.probe(2, LockMode::kWrite, iv(1, 10));
  EXPECT_TRUE(pw.permanent.contains(iv(3, 6)));
  EXPECT_TRUE(pw.available.contains(iv(1, 2)));
}

TEST(LockStateTest, ReleaseFreesPoints) {
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{iv(5, 10)});
  ls.release(1, LockMode::kWrite, IntervalSet{iv(7, 8)});
  const ProbeResult p = ls.probe(2, LockMode::kWrite, iv(5, 10));
  EXPECT_TRUE(p.available.contains(iv(7, 8)));
  EXPECT_TRUE(p.blocked.contains(iv(5, 6)));
  EXPECT_TRUE(p.blocked.contains(iv(9, 10)));
}

TEST(LockStateTest, ReleaseAllKeepsFrozen) {
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{iv(5, 10)});
  ls.freeze(1, LockMode::kWrite, IntervalSet{Interval::point(ts(6))});
  ls.release_all(1);
  const ProbeResult p = ls.probe(2, LockMode::kWrite, iv(5, 10));
  EXPECT_TRUE(p.permanent.contains(ts(6)));
  EXPECT_TRUE(p.available.contains(ts(5)));
  EXPECT_TRUE(p.available.contains(iv(7, 10)));
}

TEST(LockStateTest, FreezeOnlyCoversHeldPoints) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{iv(5, 8)});
  ls.freeze(1, LockMode::kRead, IntervalSet{iv(1, 20)});
  // Only [5,8] actually freezes.
  const ProbeResult p = ls.probe(2, LockMode::kWrite, iv(1, 20));
  EXPECT_TRUE(p.permanent.contains(iv(5, 8)));
  EXPECT_TRUE(p.available.contains(iv(1, 4)));
  EXPECT_TRUE(p.available.contains(iv(9, 20)));
}

TEST(LockStateTest, HoldsReflectsModes) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{iv(2, 4)});
  ls.grant(1, LockMode::kWrite, IntervalSet{Interval::point(ts(9))});
  EXPECT_TRUE(ls.holds(1, LockMode::kRead, ts(3)));
  EXPECT_FALSE(ls.holds(1, LockMode::kWrite, ts(3)));
  EXPECT_TRUE(ls.holds(1, LockMode::kWrite, ts(9)));
  // A write lock counts as read coverage too.
  EXPECT_TRUE(ls.holds(1, LockMode::kRead, ts(9)));
  EXPECT_FALSE(ls.holds(2, LockMode::kRead, ts(3)));
}

TEST(LockStateTest, PurgeDropsFrozenStateBelowHorizon) {
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{iv(2, 3)});
  ls.freeze(1, LockMode::kWrite, IntervalSet{iv(2, 3)});
  ls.grant(2, LockMode::kRead, IntervalSet{iv(4, 6)});
  ls.freeze(2, LockMode::kRead, IntervalSet{iv(4, 6)});
  EXPECT_EQ(ls.entry_count(), 2u);
  ls.purge_below(ts(10));
  EXPECT_EQ(ls.entry_count(), 0u);
}

TEST(LockStateTest, WritesBelowHorizonPermanentlyRefused) {
  LockState ls;
  ls.purge_below(ts(100));
  const ProbeResult pw = ls.probe(1, LockMode::kWrite, iv(1, 150));
  EXPECT_TRUE(pw.permanent.contains(iv(1, 99)));
  EXPECT_TRUE(pw.available.contains(iv(100, 150)));
}

TEST(LockStateTest, ReadsBelowHorizonAutoAvailable) {
  LockState ls;
  ls.purge_below(ts(100));
  const ProbeResult pr = ls.probe(1, LockMode::kRead, iv(1, 150));
  EXPECT_TRUE(pr.available.contains(iv(1, 150)));
  EXPECT_FALSE(pr.hit_frozen_write);
}

TEST(LockStateTest, ActiveWriteLocksSurviveThePurgeHorizon) {
  // A prepared transaction's write lock must never be stripped by a GC
  // broadcast: the owner may still commit at that point, so the lock
  // keeps blocking readers even below the horizon. (Regression: the
  // timestamp service racing a distributed finalize used to strip the
  // lock and trip commit_key's holds() assert.)
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{iv(40, 45)});
  ls.grant(1, LockMode::kRead, IntervalSet{iv(30, 39)});
  ls.purge_below(ts(100));
  EXPECT_TRUE(ls.holds(1, LockMode::kWrite, ts(42)));
  EXPECT_FALSE(ls.holds(1, LockMode::kRead, ts(35)));  // reads reclaimed
  const ProbeResult pr = ls.probe(2, LockMode::kRead, iv(1, 150));
  EXPECT_TRUE(pr.blocked.contains(iv(40, 45)));
  EXPECT_FALSE(pr.available.contains(ts(42)));
  // Once the owner commits (freeze) the conflict turns permanent and the
  // reader is told to re-resolve its version.
  ls.freeze(1, LockMode::kWrite, IntervalSet{iv(40, 45)});
  const ProbeResult after = ls.probe(2, LockMode::kRead, iv(1, 150));
  EXPECT_TRUE(after.permanent.contains(iv(40, 45)));
  EXPECT_TRUE(after.hit_frozen_write);
}

TEST(LockStateTest, EntryCountReflectsCompression) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{iv(1, 5)});
  ls.grant(1, LockMode::kRead, IntervalSet{iv(6, 9)});  // coalesces
  EXPECT_EQ(ls.entry_count(), 1u);
  ls.grant(2, LockMode::kWrite, IntervalSet{iv(20, 25)});
  EXPECT_EQ(ls.entry_count(), 2u);
  EXPECT_EQ(ls.owner_count(), 2u);
}

TEST(LockStateTest, PurgeHorizonMonotone) {
  LockState ls;
  ls.purge_below(ts(50));
  ls.purge_below(ts(20));  // lower horizon must not regress
  EXPECT_EQ(ls.purge_horizon(), ts(50));
}

}  // namespace
}  // namespace mvtl
