// Garbage-collection and state-compression tests: lock-state purging
// (including reclaiming crashed owners' unfrozen locks), read-range
// freezing helpers, and store-level aggregation.
#include <gtest/gtest.h>

#include "storage/lock_ops.hpp"
#include "storage/store.hpp"

namespace mvtl {
namespace {

Timestamp ts(std::uint64_t raw) { return Timestamp{raw}; }
Interval iv(std::uint64_t lo, std::uint64_t hi) {
  return Interval{ts(lo), ts(hi)};
}

TEST(LockPurgeTest, ReclaimsUnfrozenOwnerReadLocksBelowHorizon) {
  // An owner's unfrozen READ locks below the horizon are reclaimed even
  // though nobody released them: new write locks below the horizon are
  // permanently refused, so the stripped reads stay vacuously protected
  // (Theorem 9 hygiene at the state level; a crashed owner's *write*
  // locks are the suspicion machinery's to release — the purge must keep
  // them, since a live prepared owner may still commit there).
  LockState ls;
  ls.grant(1, LockMode::kWrite, IntervalSet{iv(10, 20)});
  ls.grant(1, LockMode::kRead, IntervalSet{iv(30, 200)});
  ls.purge_below(ts(100));
  // Reads below 100: gone. Reads above, and writes anywhere: intact.
  EXPECT_TRUE(ls.holds(1, LockMode::kWrite, ts(15)));
  EXPECT_FALSE(ls.holds(1, LockMode::kRead, ts(50)));
  EXPECT_TRUE(ls.holds(1, LockMode::kRead, ts(150)));
  const ProbeResult p = ls.probe(2, LockMode::kWrite, iv(100, 300));
  EXPECT_TRUE(p.blocked.contains(iv(100, 200)));
  EXPECT_TRUE(p.available.contains(iv(201, 300)));
}

TEST(LockPurgeTest, OwnerEntryDroppedWhenFullyBelowHorizon) {
  LockState ls;
  ls.grant(1, LockMode::kRead, IntervalSet{iv(10, 20)});
  EXPECT_EQ(ls.owner_count(), 1u);
  ls.purge_below(ts(100));
  EXPECT_EQ(ls.owner_count(), 0u);
  EXPECT_EQ(ls.entry_count(), 0u);
}

TEST(FreezeReadsUptoTest, FreezesOnlyAtOrBelowCommit) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(1, LockMode::kRead, IntervalSet{iv(5, 50)});
  }
  lock_ops::freeze_reads_upto(ks, 1, ts(30));
  const ProbeResult p = ks.locks.probe(2, LockMode::kWrite, iv(5, 50));
  EXPECT_TRUE(p.permanent.contains(iv(5, 30)));  // frozen
  EXPECT_TRUE(p.blocked.contains(iv(31, 50)));   // still held, unfrozen
}

TEST(ReleaseWritesExceptTest, KeepsOnlyRequestedPoints) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(1, LockMode::kWrite, IntervalSet{iv(10, 40)});
  }
  lock_ops::release_writes_except(ks, 1, IntervalSet{iv(20, 25)});
  EXPECT_FALSE(ks.locks.holds(1, LockMode::kWrite, ts(15)));
  EXPECT_TRUE(ks.locks.holds(1, LockMode::kWrite, ts(22)));
  EXPECT_FALSE(ks.locks.holds(1, LockMode::kWrite, ts(30)));
}

TEST(ReleaseWritesExceptTest, DoesNotTouchReadLocks) {
  KeyState ks;
  {
    std::lock_guard guard(ks.mu);
    ks.locks.grant(1, LockMode::kRead, IntervalSet{iv(10, 40)});
    ks.locks.grant(1, LockMode::kWrite, IntervalSet{iv(10, 40)});
  }
  lock_ops::release_writes_except(ks, 1, IntervalSet{});
  EXPECT_FALSE(ks.locks.holds(1, LockMode::kWrite, ts(20)));
  EXPECT_TRUE(ks.locks.holds(1, LockMode::kRead, ts(20)));
}

TEST(StoreTest, KeyStateIsStableAndShared) {
  Store store(4);
  KeyState& a = store.key_state("alpha");
  KeyState& b = store.key_state("alpha");
  EXPECT_EQ(&a, &b);
  KeyState& c = store.key_state("beta");
  EXPECT_NE(&a, &c);
}

TEST(StoreTest, StatsAggregateAcrossKeys) {
  Store store(4);
  for (int i = 0; i < 10; ++i) {
    KeyState& ks = store.key_state("k" + std::to_string(i));
    std::lock_guard guard(ks.mu);
    ks.versions.install(ts(10), "v", 1);
    ks.locks.grant(1, LockMode::kRead, IntervalSet{iv(11, 20)});
  }
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.keys, 10u);
  EXPECT_EQ(stats.versions, 10u);
  EXPECT_EQ(stats.lock_entries, 10u);
}

TEST(StoreTest, PurgeBelowSweepsEveryKey) {
  Store store(4);
  for (int i = 0; i < 6; ++i) {
    KeyState& ks = store.key_state("k" + std::to_string(i));
    std::lock_guard guard(ks.mu);
    ks.versions.install(ts(10), "old", 1);
    ks.versions.install(ts(20), "mid", 2);
    ks.versions.install(ts(200), "new", 3);
  }
  const std::size_t dropped = store.purge_below(ts(100));
  EXPECT_EQ(dropped, 6u);  // one per key ("old"); "mid" survives as newest
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.versions, 12u);
}

TEST(StoreTest, ForEachVisitsAllKeys) {
  Store store(8);
  for (int i = 0; i < 25; ++i) {
    (void)store.key_state("k" + std::to_string(i));
  }
  std::size_t visited = 0;
  store.for_each([&](const Key&, KeyState&) { ++visited; });
  EXPECT_EQ(visited, 25u);
}

TEST(ConcurrentStoreTest, ParallelKeyStateCreation) {
  Store store(8);
  std::vector<std::thread> threads;
  std::vector<KeyState*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<size_t>(t)] = &store.key_state("same-key");
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
}

}  // namespace
}  // namespace mvtl
