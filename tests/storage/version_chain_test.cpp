#include "storage/version_chain.hpp"

#include <gtest/gtest.h>

namespace mvtl {
namespace {

Timestamp ts(std::uint64_t raw) { return Timestamp{raw}; }

TEST(VersionChainTest, EmptyChainResolvesToBottom) {
  VersionChain chain;
  const auto& v = chain.latest_before(ts(100));
  EXPECT_EQ(v.ts, Timestamp::min());
  EXPECT_FALSE(v.value.has_value());
  EXPECT_EQ(v.writer, kInvalidTxId);
}

TEST(VersionChainTest, LatestBeforeIsStrict) {
  VersionChain chain;
  chain.install(ts(5), "a", 1);
  chain.install(ts(9), "b", 2);
  EXPECT_EQ(chain.latest_before(ts(5)).ts, Timestamp::min());
  EXPECT_EQ(chain.latest_before(ts(6)).ts, ts(5));
  EXPECT_EQ(chain.latest_before(ts(9)).ts, ts(5));
  EXPECT_EQ(chain.latest_before(ts(10)).ts, ts(9));
  EXPECT_EQ(*chain.latest_before(ts(10)).value, "b");
}

TEST(VersionChainTest, PaperTimelineExample) {
  // §3's object X: versions a@2 and b@9; a transaction at 6 reads a.
  VersionChain chain;
  chain.install(ts(2), "a", 1);
  chain.install(ts(9), "b", 2);
  const auto& v = chain.latest_before(ts(6));
  EXPECT_EQ(v.ts, ts(2));
  EXPECT_EQ(*v.value, "a");
}

TEST(VersionChainTest, OutOfOrderInstallKeepsSorted) {
  VersionChain chain;
  chain.install(ts(9), "c", 3);
  chain.install(ts(2), "a", 1);
  chain.install(ts(5), "b", 2);
  EXPECT_EQ(chain.latest_before(ts(4)).ts, ts(2));
  EXPECT_EQ(chain.latest_before(ts(8)).ts, ts(5));
  EXPECT_EQ(chain.version_count(), 3u);
}

TEST(VersionChainTest, HasVersionAt) {
  VersionChain chain;
  chain.install(ts(4), "x", 1);
  EXPECT_TRUE(chain.has_version_at(ts(4)));
  EXPECT_FALSE(chain.has_version_at(ts(3)));
  EXPECT_FALSE(chain.has_version_at(ts(5)));
}

TEST(VersionChainTest, LatestIsNewest) {
  VersionChain chain;
  EXPECT_EQ(chain.latest().ts, Timestamp::min());
  chain.install(ts(4), "x", 1);
  chain.install(ts(7), "y", 2);
  EXPECT_EQ(chain.latest().ts, ts(7));
}

TEST(VersionChainTest, PurgeKeepsNewestBelowHorizon) {
  VersionChain chain;
  chain.install(ts(2), "a", 1);
  chain.install(ts(5), "b", 2);
  chain.install(ts(8), "c", 3);
  chain.install(ts(20), "d", 4);
  const std::size_t dropped = chain.purge_below(ts(10));
  EXPECT_EQ(dropped, 2u);  // a and b go; c survives as the newest below 10
  EXPECT_EQ(chain.version_count(), 2u);
  EXPECT_EQ(chain.latest_before(ts(15)).ts, ts(8));
  EXPECT_EQ(chain.latest_before(ts(25)).ts, ts(20));
}

TEST(VersionChainTest, PurgeNothingBelowIsNoop) {
  VersionChain chain;
  chain.install(ts(20), "d", 4);
  EXPECT_EQ(chain.purge_below(ts(10)), 0u);
  EXPECT_EQ(chain.version_count(), 1u);
}

TEST(VersionChainTest, SafeBoundsAfterPurge) {
  VersionChain chain;
  chain.install(ts(2), "a", 1);
  chain.install(ts(5), "b", 2);
  chain.install(ts(8), "c", 3);
  chain.purge_below(ts(10));
  // Bounds at or below the survivor (8) can no longer be resolved.
  EXPECT_FALSE(chain.is_safe_bound(ts(4)));
  EXPECT_FALSE(chain.is_safe_bound(ts(8)));
  EXPECT_TRUE(chain.is_safe_bound(ts(9)));
  EXPECT_TRUE(chain.is_safe_bound(ts(100)));
}

TEST(VersionChainTest, AllBoundsSafeWithoutPurge) {
  VersionChain chain;
  chain.install(ts(5), "a", 1);
  EXPECT_TRUE(chain.is_safe_bound(ts(1)));
  EXPECT_TRUE(chain.is_safe_bound(ts(5)));
}

TEST(VersionChainTest, RepeatedPurgeMonotone) {
  VersionChain chain;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    chain.install(ts(i * 10), "v", i);
  }
  chain.purge_below(ts(45));
  EXPECT_EQ(chain.latest_before(ts(50)).ts, ts(40));
  chain.purge_below(ts(85));
  EXPECT_EQ(chain.latest_before(ts(90)).ts, ts(80));
  EXPECT_FALSE(chain.is_safe_bound(ts(80)));
  EXPECT_EQ(chain.version_count(), 3u);  // 80, 90, 100
}

}  // namespace
}  // namespace mvtl
