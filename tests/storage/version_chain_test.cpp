#include "storage/version_chain.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace mvtl {
namespace {

Timestamp ts(std::uint64_t raw) { return Timestamp{raw}; }

TEST(VersionChainTest, EmptyChainResolvesToBottom) {
  VersionChain chain;
  ebr::Guard g;
  const VersionView v = chain.latest_before(ts(100), g);
  EXPECT_EQ(v.ts, Timestamp::min());
  EXPECT_FALSE(v.has_value);
  EXPECT_EQ(v.writer, kInvalidTxId);
}

TEST(VersionChainTest, LatestBeforeIsStrict) {
  VersionChain chain;
  chain.install(ts(5), "a", 1);
  chain.install(ts(9), "b", 2);
  ebr::Guard g;
  EXPECT_EQ(chain.latest_before(ts(5), g).ts, Timestamp::min());
  EXPECT_EQ(chain.latest_before(ts(6), g).ts, ts(5));
  EXPECT_EQ(chain.latest_before(ts(9), g).ts, ts(5));
  EXPECT_EQ(chain.latest_before(ts(10), g).ts, ts(9));
  EXPECT_EQ(chain.latest_before(ts(10), g).value, "b");
}

TEST(VersionChainTest, PaperTimelineExample) {
  // §3's object X: versions a@2 and b@9; a transaction at 6 reads a.
  VersionChain chain;
  chain.install(ts(2), "a", 1);
  chain.install(ts(9), "b", 2);
  ebr::Guard g;
  const VersionView v = chain.latest_before(ts(6), g);
  EXPECT_EQ(v.ts, ts(2));
  EXPECT_EQ(v.value, "a");
}

TEST(VersionChainTest, OutOfOrderInstallKeepsSorted) {
  VersionChain chain;
  chain.install(ts(9), "c", 3);
  chain.install(ts(2), "a", 1);
  chain.install(ts(5), "b", 2);
  ebr::Guard g;
  EXPECT_EQ(chain.latest_before(ts(4), g).ts, ts(2));
  EXPECT_EQ(chain.latest_before(ts(8), g).ts, ts(5));
  EXPECT_EQ(chain.version_count(), 3u);
}

TEST(VersionChainTest, HasVersionAt) {
  VersionChain chain;
  chain.install(ts(4), "x", 1);
  EXPECT_TRUE(chain.has_version_at(ts(4)));
  EXPECT_FALSE(chain.has_version_at(ts(3)));
  EXPECT_FALSE(chain.has_version_at(ts(5)));
}

TEST(VersionChainTest, LatestIsNewest) {
  VersionChain chain;
  ebr::Guard g;
  EXPECT_EQ(chain.latest(g).ts, Timestamp::min());
  chain.install(ts(4), "x", 1);
  chain.install(ts(7), "y", 2);
  EXPECT_EQ(chain.latest(g).ts, ts(7));
}

TEST(VersionChainTest, PurgeKeepsNewestBelowHorizon) {
  VersionChain chain;
  chain.install(ts(2), "a", 1);
  chain.install(ts(5), "b", 2);
  chain.install(ts(8), "c", 3);
  chain.install(ts(20), "d", 4);
  const std::size_t dropped = chain.purge_below(ts(10));
  EXPECT_EQ(dropped, 2u);  // a and b go; c survives as the newest below 10
  EXPECT_EQ(chain.version_count(), 2u);
  ebr::Guard g;
  EXPECT_EQ(chain.latest_before(ts(15), g).ts, ts(8));
  EXPECT_EQ(chain.latest_before(ts(25), g).ts, ts(20));
}

TEST(VersionChainTest, PurgeNothingBelowIsNoop) {
  VersionChain chain;
  chain.install(ts(20), "d", 4);
  EXPECT_EQ(chain.purge_below(ts(10)), 0u);
  EXPECT_EQ(chain.version_count(), 1u);
}

TEST(VersionChainTest, SafeBoundsAfterPurge) {
  VersionChain chain;
  chain.install(ts(2), "a", 1);
  chain.install(ts(5), "b", 2);
  chain.install(ts(8), "c", 3);
  chain.purge_below(ts(10));
  // Bounds at or below the survivor (8) can no longer be resolved.
  EXPECT_FALSE(chain.is_safe_bound(ts(4)));
  EXPECT_FALSE(chain.is_safe_bound(ts(8)));
  EXPECT_TRUE(chain.is_safe_bound(ts(9)));
  EXPECT_TRUE(chain.is_safe_bound(ts(100)));
}

TEST(VersionChainTest, AllBoundsSafeWithoutPurge) {
  VersionChain chain;
  chain.install(ts(5), "a", 1);
  EXPECT_TRUE(chain.is_safe_bound(ts(1)));
  EXPECT_TRUE(chain.is_safe_bound(ts(5)));
}

TEST(VersionChainTest, RepeatedPurgeMonotone) {
  VersionChain chain;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    chain.install(ts(i * 10), "v", i);
  }
  chain.purge_below(ts(45));
  ebr::Guard g;
  EXPECT_EQ(chain.latest_before(ts(50), g).ts, ts(40));
  chain.purge_below(ts(85));
  EXPECT_EQ(chain.latest_before(ts(90), g).ts, ts(80));
  EXPECT_FALSE(chain.is_safe_bound(ts(80)));
  EXPECT_EQ(chain.version_count(), 3u);  // 80, 90, 100
}

TEST(VersionChainTest, LargeValuesSpillOutOfInlineStorage) {
  VersionChain chain;
  const std::string big(1000, 'x');
  const std::string small = "s";
  chain.install(ts(5), big, 1);
  chain.install(ts(9), small, 2);
  ebr::Guard g;
  EXPECT_EQ(chain.latest_before(ts(6), g).value, big);
  EXPECT_EQ(chain.latest_before(ts(10), g).value, small);
  // Force a rebuild (out-of-order install) and re-check the deep copies.
  chain.install(ts(7), std::string(500, 'y'), 3);
  EXPECT_EQ(chain.latest_before(ts(6), g).value, big);
  EXPECT_EQ(chain.latest_before(ts(8), g).value, std::string(500, 'y'));
}

TEST(VersionChainTest, SnapshotCopiesWholeChainInOrder) {
  VersionChain chain;
  chain.install(ts(9), "c", 3);
  chain.install(ts(2), "a", 1);
  chain.install(ts(5), std::string(100, 'b'), 2);
  const auto records = chain.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].ts, ts(2));
  EXPECT_EQ(records[0].value, "a");
  EXPECT_EQ(records[1].value, std::string(100, 'b'));
  EXPECT_EQ(records[2].ts, ts(9));
  EXPECT_EQ(records[2].writer, 3u);
}

TEST(VersionChainTest, ResolveAtCombinesSafetyAndResolution) {
  VersionChain chain;
  chain.install(ts(2), "a", 1);
  chain.install(ts(8), "c", 3);
  ebr::Guard g;
  VersionChain::Resolved r = chain.resolve_at(ts(9), g);
  EXPECT_TRUE(r.safe);
  EXPECT_EQ(r.view.ts, ts(8));
  EXPECT_GE(r.attempts, 1u);

  chain.install(ts(5), "b", 2);  // rebuild
  chain.purge_below(ts(9));      // floor rises to 8
  r = chain.resolve_at(ts(8), g);
  EXPECT_FALSE(r.safe);
  r = chain.resolve_at(ts(9), g);
  EXPECT_TRUE(r.safe);
  EXPECT_EQ(r.view.ts, ts(8));
  EXPECT_EQ(r.view.value, "c");
}

// Regression: a reader that lands inside a writer's seqlock section must
// retry (never return a torn view). DebugWriterHold pins the chain in
// the mid-replacement (odd) state; the reader must block until release
// and report > 1 attempt.
TEST(VersionChainSeqlockTest, TornReadRetriesUntilWriterFinishes) {
  VersionChain chain;
  chain.install(ts(5), "a", 1);

  std::atomic<bool> reader_started{false};
  std::atomic<bool> reader_done{false};
  VersionChain::Resolved result;

  std::thread reader;
  {
    auto hold = chain.debug_hold_writer();
    reader = std::thread([&] {
      ebr::Guard g;
      reader_started.store(true);
      result = chain.resolve_at(ts(6), g);  // spins: seq is odd
      reader_done.store(true);
    });
    while (!reader_started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Still torn: the reader must not have returned a value.
    EXPECT_FALSE(reader_done.load());
  }  // hold released: seq becomes even again
  reader.join();
  EXPECT_TRUE(reader_done.load());
  EXPECT_GT(result.attempts, 1u);
  EXPECT_TRUE(result.safe);
  EXPECT_EQ(result.view.ts, ts(5));
  EXPECT_EQ(result.view.value, "a");
}

TEST(VersionChainSeqlockTest, UntornReadResolvesInOneAttempt) {
  VersionChain chain;
  chain.install(ts(5), "a", 1);
  ebr::Guard g;
  const VersionChain::Resolved r = chain.resolve_at(ts(6), g);
  EXPECT_EQ(r.attempts, 1u);
}

}  // namespace
}  // namespace mvtl
