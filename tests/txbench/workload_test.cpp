#include "txbench/workload.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "txbench/latency.hpp"
#include "txbench/metrics.hpp"

namespace mvtl {
namespace {

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadConfig config;
  config.seed = 42;
  WorkloadGenerator a(config);
  WorkloadGenerator b(config);
  for (int i = 0; i < 10; ++i) {
    const TxSpec ta = a.next_tx();
    const TxSpec tb = b.next_tx();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].kind, tb[j].kind);
      EXPECT_EQ(ta[j].key, tb[j].key);
      EXPECT_EQ(ta[j].value, tb[j].value);
    }
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig a_config;
  a_config.seed = 1;
  WorkloadConfig b_config;
  b_config.seed = 2;
  WorkloadGenerator a(a_config);
  WorkloadGenerator b(b_config);
  int differences = 0;
  for (int i = 0; i < 5; ++i) {
    const TxSpec ta = a.next_tx();
    const TxSpec tb = b.next_tx();
    for (std::size_t j = 0; j < ta.size() && j < tb.size(); ++j) {
      if (ta[j].key != tb[j].key) ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(WorkloadTest, RespectsOpsPerTx) {
  WorkloadConfig config;
  config.ops_per_tx = 7;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gen.next_tx().size(), 7u);
  }
}

TEST(WorkloadTest, WriteFractionApproximatelyHolds) {
  WorkloadConfig config;
  config.write_fraction = 0.25;
  config.ops_per_tx = 20;
  WorkloadGenerator gen(config);
  int writes = 0;
  int total = 0;
  for (int i = 0; i < 500; ++i) {
    for (const Op& op : gen.next_tx()) {
      ++total;
      if (op.kind == Op::Kind::kWrite) ++writes;
    }
  }
  const double fraction = static_cast<double>(writes) / total;
  EXPECT_NEAR(fraction, 0.25, 0.02);
}

TEST(WorkloadTest, WriteFractionExtremes) {
  for (const double f : {0.0, 1.0}) {
    WorkloadConfig config;
    config.write_fraction = f;
    WorkloadGenerator gen(config);
    for (const Op& op : gen.next_tx()) {
      EXPECT_EQ(op.kind == Op::Kind::kWrite, f == 1.0);
    }
  }
}

TEST(WorkloadTest, KeysStayInKeySpace) {
  WorkloadConfig config;
  config.key_space = 10;
  WorkloadGenerator gen(config);
  std::set<Key> valid;
  for (std::uint64_t i = 0; i < 10; ++i) valid.insert(make_key(i));
  for (int i = 0; i < 50; ++i) {
    for (const Op& op : gen.next_tx()) {
      EXPECT_EQ(valid.count(op.key), 1u) << op.key;
    }
  }
}

TEST(WorkloadTest, ZipfSkewsTowardFewKeys) {
  WorkloadConfig uniform;
  uniform.key_space = 1'000;
  uniform.zipf_theta = 0.0;
  WorkloadConfig skewed = uniform;
  skewed.zipf_theta = 0.99;

  auto top_key_share = [](WorkloadConfig config) {
    WorkloadGenerator gen(config);
    std::unordered_map<Key, int> counts;
    int total = 0;
    for (int i = 0; i < 500; ++i) {
      for (const Op& op : gen.next_tx()) {
        ++counts[op.key];
        ++total;
      }
    }
    int top = 0;
    for (const auto& [key, n] : counts) top = std::max(top, n);
    return static_cast<double>(top) / total;
  };

  EXPECT_GT(top_key_share(skewed), 5 * top_key_share(uniform));
}

TEST(WorkloadTest, ValuesHaveConfiguredLength) {
  WorkloadConfig config;
  config.write_fraction = 1.0;
  config.value_len = 8;  // paper: 8-character strings
  WorkloadGenerator gen(config);
  for (const Op& op : gen.next_tx()) {
    EXPECT_EQ(op.value.size(), 8u);
  }
}

TEST(WorkloadTest, ValueLenVariantsAllHold) {
  // The chaos suite varies payload sizes; every configured length must
  // hold exactly, including the degenerate empty value.
  for (const std::size_t len : {0u, 1u, 64u, 1'024u}) {
    WorkloadConfig config;
    config.write_fraction = 1.0;
    config.value_len = len;
    WorkloadGenerator gen(config);
    for (int i = 0; i < 3; ++i) {
      for (const Op& op : gen.next_tx()) {
        EXPECT_EQ(op.value.size(), len);
      }
    }
  }
}

TEST(WorkloadTest, ZipfStreamIsDeterministicPerSeed) {
  // Not just the same distribution — the exact skewed key SEQUENCE must
  // replay per seed, or a chaos repro would diverge from the failing
  // run. A third generator with a different seed must diverge.
  WorkloadConfig config;
  config.key_space = 500;
  config.zipf_theta = 0.9;
  config.seed = 77;
  WorkloadGenerator a(config);
  WorkloadGenerator b(config);
  WorkloadConfig other = config;
  other.seed = 78;
  WorkloadGenerator c(other);
  int diverged = 0;
  for (int i = 0; i < 50; ++i) {
    const TxSpec ta = a.next_tx();
    const TxSpec tb = b.next_tx();
    const TxSpec tc = c.next_tx();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].key, tb[j].key);
      EXPECT_EQ(ta[j].kind, tb[j].kind);
      EXPECT_EQ(ta[j].value, tb[j].value);
      if (j < tc.size() && ta[j].key != tc[j].key) ++diverged;
    }
  }
  EXPECT_GT(diverged, 0);
}

TEST(WorkloadTest, RmwSlotsEmitReadThenWriteOfSameKey) {
  WorkloadConfig config;
  config.write_fraction = 0.0;
  config.rmw_fraction = 1.0;  // every slot is a read-modify-write pair
  config.ops_per_tx = 3;
  config.value_len = 6;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 5; ++i) {
    const TxSpec tx = gen.next_tx();
    ASSERT_EQ(tx.size(), 6u);  // ops_per_tx slots, two ops per slot
    for (std::size_t j = 0; j < tx.size(); j += 2) {
      EXPECT_EQ(tx[j].kind, Op::Kind::kRead);
      EXPECT_EQ(tx[j + 1].kind, Op::Kind::kWrite);
      EXPECT_EQ(tx[j].key, tx[j + 1].key);
      EXPECT_EQ(tx[j + 1].value.size(), 6u);
    }
  }
}

TEST(WorkloadTest, RmwFractionApproximatelyHolds) {
  WorkloadConfig config;
  config.write_fraction = 0.3;
  config.rmw_fraction = 0.2;
  config.ops_per_tx = 20;
  WorkloadGenerator gen(config);
  int reads = 0, writes = 0, slots = 0;
  for (int i = 0; i < 500; ++i) {
    for (const Op& op : gen.next_tx()) {
      (op.kind == Op::Kind::kWrite ? writes : reads)++;
    }
    slots += 20;
  }
  // Per slot: P(write)=0.3, P(rmw)=0.2 (one read + one write), else read.
  EXPECT_NEAR(static_cast<double>(writes) / slots, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(reads) / slots, 0.7, 0.03);
}

TEST(WorkloadTest, ZeroRmwFractionPreservesLegacyStreams) {
  // rmw_fraction was added to WorkloadConfig after suites had baked in
  // per-seed streams; at its default 0 the generator must draw exactly
  // the same sequence as before the knob existed (one uniform draw per
  // slot), so recorded seeds keep replaying byte-identically.
  WorkloadConfig legacy;
  legacy.seed = 9;
  legacy.write_fraction = 0.5;
  WorkloadConfig with_knob = legacy;
  with_knob.rmw_fraction = 0.0;
  WorkloadGenerator a(legacy);
  WorkloadGenerator b(with_knob);
  for (int i = 0; i < 20; ++i) {
    const TxSpec ta = a.next_tx();
    const TxSpec tb = b.next_tx();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t j = 0; j < ta.size(); ++j) {
      EXPECT_EQ(ta[j].kind, tb[j].kind);
      EXPECT_EQ(ta[j].key, tb[j].key);
      EXPECT_EQ(ta[j].value, tb[j].value);
    }
  }
}

TEST(MetricsTest, RatesAndCounts) {
  Metrics m;
  for (int i = 0; i < 30; ++i) m.add_commit();
  for (int i = 0; i < 10; ++i) m.add_abort(AbortReason::kLockTimeout);
  EXPECT_EQ(m.committed(), 30u);
  EXPECT_EQ(m.aborted(), 10u);
  EXPECT_EQ(m.attempts(), 40u);
  EXPECT_DOUBLE_EQ(m.commit_rate(), 0.75);
  EXPECT_EQ(m.aborts_for(AbortReason::kLockTimeout), 10u);
  EXPECT_EQ(m.aborts_for(AbortReason::kVersionPurged), 0u);
  EXPECT_NEAR(m.throughput_tps(std::chrono::duration<double>(2.0)), 15.0,
              1e-9);
  m.reset();
  EXPECT_EQ(m.attempts(), 0u);
  EXPECT_DOUBLE_EQ(m.commit_rate(), 1.0);  // vacuous
}

TEST(LatencyHistogramTest, QuantilesOrdered) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.record(std::chrono::microseconds{i});
  }
  EXPECT_EQ(h.count(), 1000u);
  const double p50 = h.quantile_us(0.50);
  const double p99 = h.quantile_us(0.99);
  EXPECT_GT(p50, 300.0);
  EXPECT_LT(p50, 800.0);
  EXPECT_GT(p99, p50);
  EXPECT_LT(p99, 1'500.0);
}

TEST(LatencyHistogramTest, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile_us(0.99), 0.0);
  h.record(std::chrono::milliseconds{5});
  EXPECT_GT(h.quantile_us(0.5), 1'000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_us(0.5), 0.0);
}

}  // namespace
}  // namespace mvtl
