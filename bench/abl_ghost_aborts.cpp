// Ablation (Theorem 7): ghost aborts.
//
// Repeats the paper's §5.5 schedule on fresh key triples:
//   T3: R(X) C;  T2: R(Y) W(X) A;  T1: W(Y) → ?
// T1's only conflict is with the already-aborted T2 — a ghost abort.
// MVTL-TO (≙ MVTO+) aborts T1 every time because aborted transactions
// leave their read locks (read timestamps) behind; MVTL-Ghostbuster
// garbage collects on abort and never loses T1.
#include <cstdio>
#include <utility>

#include "api/db.hpp"
#include "txbench/report.hpp"

namespace {

using namespace mvtl;

struct GhostStats {
  int t2_aborts = 0;  // the real conflict (expected in both)
  int t1_aborts = 0;  // the ghost abort (only without GC)
};

GhostStats run_schedules(Db& db, ManualClock& clock, int rounds) {
  GhostStats stats;
  for (int i = 0; i < rounds; ++i) {
    const Key x = "X" + std::to_string(i);
    const Key y = "Y" + std::to_string(i);
    const std::uint64_t base = 100 + static_cast<std::uint64_t>(i) * 100;

    clock.set(base + 10);
    Transaction t1 = db.begin(TxOptions{.process = 1});
    clock.set(base + 20);
    Transaction t2 = db.begin(TxOptions{.process = 2});
    clock.set(base + 30);
    Transaction t3 = db.begin(TxOptions{.process = 3});

    (void)t3.get(x);
    (void)t3.commit();

    (void)t2.get(y);
    (void)t2.put(x, "x2");
    if (!t2.commit().ok()) ++stats.t2_aborts;

    (void)t1.put(y, "y1");
    if (!t1.commit().ok()) ++stats.t1_aborts;
  }
  return stats;
}

}  // namespace

int main() {
  using mvtl::Table;
  constexpr int kRounds = 500;

  Table table({"algorithm", "T2 aborts (real conflict)",
               "T1 aborts (ghost)"});
  for (const auto& [label, policy] :
       {std::pair<const char*, Policy>{"MVTL-TO (= MVTO+)", Policy::to()},
        std::pair<const char*, Policy>{"MVTL-Ghostbuster",
                                       Policy::ghostbuster()}}) {
    auto clock = std::make_shared<ManualClock>(1);
    Db db = Options().policy(policy).clock(clock).open();
    const GhostStats s = run_schedules(db, *clock, kRounds);
    table.add_row({label, std::to_string(s.t2_aborts),
                   std::to_string(s.t1_aborts)});
  }

  std::printf("=== Ghost aborts over %d instances of the S5.5 schedule ===\n",
              kRounds);
  table.print();
  std::printf(
      "\nShape check: both algorithms abort T2 (a genuine conflict with "
      "T3); only MVTL-TO aborts T1, whose sole conflict is with a "
      "transaction that had already aborted (Theorem 7).\n");
  return 0;
}
