// Microbenchmark: the freezable interval lock table — acquire/release/
// freeze cycles and conflict probes, the per-access cost of every MVTL
// policy.
#include <benchmark/benchmark.h>

#include "micro_main.hpp"

#include "storage/lock_ops.hpp"
#include "storage/store.hpp"

namespace {

using namespace mvtl;

Interval iv(std::uint64_t lo, std::uint64_t hi) {
  return Interval{Timestamp{lo}, Timestamp{hi}};
}

void BM_UncontendedReadLockCycle(benchmark::State& state) {
  KeyState ks;
  ks.versions.install(Timestamp{100}, "v", 1);
  lock_ops::Options opts;
  TxId tx = 10;
  for (auto _ : state) {
    const auto r =
        lock_ops::acquire_read_upto(ks, tx, Timestamp{100 + 512}, opts);
    benchmark::DoNotOptimize(r);
    lock_ops::release_all(ks, tx);
    ++tx;
  }
}
BENCHMARK(BM_UncontendedReadLockCycle);

void BM_UncontendedWriteLockCycle(benchmark::State& state) {
  KeyState ks;
  lock_ops::Options opts;
  TxId tx = 10;
  for (auto _ : state) {
    const auto r = lock_ops::acquire_write_set(
        ks, tx, IntervalSet{iv(1'000, 1'512)}, opts);
    benchmark::DoNotOptimize(r);
    lock_ops::release_all(ks, tx);
    ++tx;
  }
}
BENCHMARK(BM_UncontendedWriteLockCycle);

void BM_CommitCycle(benchmark::State& state) {
  // write-lock + freeze + install, then GC — one full committed write.
  KeyState ks;
  lock_ops::Options opts;
  TxId tx = 10;
  std::uint64_t t = 1'000;
  for (auto _ : state) {
    (void)lock_ops::acquire_write_set(ks, tx, IntervalSet{iv(t, t + 64)},
                                      opts);
    lock_ops::commit_key(ks, tx, Timestamp{t}, "v");
    lock_ops::release_all(ks, tx);
    ++tx;
    t += 65;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitCycle);

void BM_ProbeAgainstFrozenHistory(benchmark::State& state) {
  // Probe cost as frozen (committed) lock history accumulates — the
  // Figure 6/7 effect in microcosm.
  const auto history = static_cast<std::uint64_t>(state.range(0));
  KeyState ks;
  for (std::uint64_t i = 0; i < history; ++i) {
    const TxId tx = 1'000 + i;
    const std::uint64_t t = 10 + i * 20;
    std::lock_guard guard(ks.mu);
    ks.locks.grant(tx, LockMode::kWrite,
                   IntervalSet{Interval::point(Timestamp{t})});
    ks.locks.freeze(tx, LockMode::kWrite,
                    IntervalSet{Interval::point(Timestamp{t})});
  }
  const Interval want = iv(history * 20 + 100, history * 20 + 612);
  for (auto _ : state) {
    std::lock_guard guard(ks.mu);
    benchmark::DoNotOptimize(ks.locks.probe(5, LockMode::kWrite, want));
  }
}
BENCHMARK(BM_ProbeAgainstFrozenHistory)->Arg(16)->Arg(256)->Arg(4096);

void BM_ConcurrentReaders(benchmark::State& state) {
  // Shared readers on one key: read locks never conflict.
  static KeyState* ks = nullptr;
  if (state.thread_index() == 0) {
    ks = new KeyState();
    ks->versions.install(Timestamp{100}, "v", 1);
  }
  lock_ops::Options opts;
  TxId tx = 1'000 + static_cast<TxId>(state.thread_index()) * 1'000'000;
  for (auto _ : state) {
    const auto r =
        lock_ops::acquire_read_upto(*ks, tx, Timestamp{100 + 512}, opts);
    benchmark::DoNotOptimize(r);
    lock_ops::release_all(*ks, tx);
    ++tx;
  }
  if (state.thread_index() == 0) {
    // Leak-free teardown after all threads stop using it is not
    // guaranteed by the framework; intentionally retain (process exits).
  }
}
BENCHMARK(BM_ConcurrentReaders)->Threads(1)->Threads(4)->Threads(8);

void BM_StoreKeyState(benchmark::State& state) {
  // Hot-key lookup through the RCU-published store index: one hash,
  // no locks, shared by all threads.
  static Store* store = nullptr;
  if (state.thread_index() == 0) {
    store = new Store();
    for (int i = 0; i < 1024; ++i) {
      store->key_state("key-" + std::to_string(i));
    }
  }
  std::uint64_t i = static_cast<std::uint64_t>(state.thread_index()) * 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store->key_state("key-" + std::to_string(i++ % 1024)));
  }
}
BENCHMARK(BM_StoreKeyState)->Threads(1)->Threads(4)->Threads(8);

}  // namespace

MVTL_MICRO_MAIN("micro_locktable")
