// Microbenchmark: per-key version chains — resolution and purge costs.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "storage/version_chain.hpp"

namespace {

using namespace mvtl;

VersionChain make_chain(std::size_t versions) {
  VersionChain chain;
  for (std::size_t i = 0; i < versions; ++i) {
    chain.install(Timestamp{10 + i * 10}, "value", i + 1);
  }
  return chain;
}

void BM_LatestBefore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VersionChain chain = make_chain(n);
  Rng rng(3);
  for (auto _ : state) {
    const Timestamp bound{rng.next_below(n * 10 + 20)};
    benchmark::DoNotOptimize(chain.latest_before(bound));
  }
}
BENCHMARK(BM_LatestBefore)->Arg(4)->Arg(64)->Arg(4096);

void BM_InstallAppend(benchmark::State& state) {
  // The common case: versions arrive in timestamp order.
  for (auto _ : state) {
    state.PauseTiming();
    VersionChain chain;
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < 256; ++i) {
      chain.install(Timestamp{10 + i * 10}, "v", i + 1);
    }
    benchmark::DoNotOptimize(chain);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InstallAppend);

void BM_PurgeBelow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    VersionChain chain = make_chain(n);
    state.ResumeTiming();
    benchmark::DoNotOptimize(chain.purge_below(Timestamp{n * 10}));
  }
}
BENCHMARK(BM_PurgeBelow)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
