// Microbenchmark: per-key version chains — resolution and purge costs.
#include <benchmark/benchmark.h>

#include <string>

#include "common/rng.hpp"
#include "micro_main.hpp"
#include "storage/version_chain.hpp"

namespace {

using namespace mvtl;

void fill_chain(VersionChain& chain, std::size_t versions) {
  for (std::size_t i = 0; i < versions; ++i) {
    chain.install(Timestamp{10 + i * 10}, "value", i + 1);
  }
}

void BM_LatestBefore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VersionChain chain;
  fill_chain(chain, n);
  Rng rng(3);
  ebr::Guard g;
  for (auto _ : state) {
    const Timestamp bound{rng.next_below(n * 10 + 20)};
    benchmark::DoNotOptimize(chain.latest_before(bound, g));
  }
}
BENCHMARK(BM_LatestBefore)->Arg(4)->Arg(64)->Arg(4096);

void BM_ResolveAt(benchmark::State& state) {
  // The snapshot-read hot path: purge-safety check + resolution in one
  // seqlock read section.
  const auto n = static_cast<std::size_t>(state.range(0));
  VersionChain chain;
  fill_chain(chain, n);
  Rng rng(3);
  ebr::Guard g;
  for (auto _ : state) {
    const Timestamp bound{rng.next_below(n * 10 + 20) + 1};
    benchmark::DoNotOptimize(chain.resolve_at(bound, g));
  }
}
BENCHMARK(BM_ResolveAt)->Arg(4)->Arg(64)->Arg(4096);

void BM_ConcurrentResolve(benchmark::State& state) {
  // Shared readers resolving against one chain — seqlock reads write no
  // shared cache line, so this should scale near-linearly.
  static VersionChain* chain = nullptr;
  if (state.thread_index() == 0) {
    chain = new VersionChain();
    fill_chain(*chain, 64);
  }
  Rng rng(3 + static_cast<std::uint64_t>(state.thread_index()));
  ebr::Guard g;
  for (auto _ : state) {
    const Timestamp bound{rng.next_below(64 * 10 + 20) + 1};
    benchmark::DoNotOptimize(chain->resolve_at(bound, g));
  }
}
BENCHMARK(BM_ConcurrentResolve)->Threads(1)->Threads(4)->Threads(8);

void BM_InstallAppend(benchmark::State& state) {
  // The common case: versions arrive in timestamp order and fit inline.
  for (auto _ : state) {
    state.PauseTiming();
    VersionChain chain;
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < 256; ++i) {
      chain.install(Timestamp{10 + i * 10}, "v", i + 1);
    }
    benchmark::DoNotOptimize(chain.version_count());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InstallAppend);

void BM_InstallAppendLargeValue(benchmark::State& state) {
  // Values past the inline cap exercise the pooled heap path.
  const std::string value(120, 'x');
  for (auto _ : state) {
    state.PauseTiming();
    VersionChain chain;
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < 256; ++i) {
      chain.install(Timestamp{10 + i * 10}, value, i + 1);
    }
    benchmark::DoNotOptimize(chain.version_count());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InstallAppendLargeValue);

void BM_PurgeBelow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    VersionChain chain;
    fill_chain(chain, n);
    state.ResumeTiming();
    benchmark::DoNotOptimize(chain.purge_below(Timestamp{n * 10}));
  }
}
BENCHMARK(BM_PurgeBelow)->Arg(64)->Arg(4096);

}  // namespace

MVTL_MICRO_MAIN("micro_versions")
