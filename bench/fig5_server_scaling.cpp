// Figure 5: effect of the number of servers, cloud test bed.
//
// Paper setup: 400 clients, 20 ops/tx, 100K keys, servers swept 1..20,
// at 25% writes (panel a) and 50% writes (panel b). Expected shape:
// every protocol scales with servers, MVTIL scales best — higher commit
// rate than MVTO+ and less lock waiting than 2PL, especially at 50%.
//
// Panel (c) reports messages per committed transaction: more servers
// spread a transaction's ops over more participants, so the batching
// factor shrinks and the per-tx message count grows — the scaling cost
// the batched RPC layer keeps sublinear in ops_per_tx.
//
// The replication panel re-runs a reduced sweep at replication factor 3
// (each shard a 3-replica group, src/repl/): throughput dips — every
// commit additionally decides a group-log entry — and messages-per-tx
// grows by the log's Paxos traffic. That is the price of surviving a
// leader crash per group; the read side of the bargain is measured by
// abl_follower_reads.
// Flags (BenchFlags): --transport=sim|tcp --net-base-us=N
// --net-jitter-us=N --window=N.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mvtl;
  using namespace mvtl::bench;

  const BenchFlags flags = BenchFlags::parse(argc, argv);

  // --connect: the server count is whatever the running cluster has, so
  // the x axis collapses to that one point (both write mixes, the
  // cluster's own protocol only) and the in-process panels are skipped.
  if (!flags.connect.empty()) {
    const std::size_t groups = load_deploy_config(flags.connect).groups();
    for (const double writes : {0.25, 0.50}) {
      const int reads_pct = static_cast<int>((1.0 - writes) * 100);
      char title[96];
      std::snprintf(title, sizeof(title),
                    "Figure 5 (connected cluster), %d%% reads", reads_pct);
      run_sweep(
          title, "servers", std::vector<std::size_t>{groups},
          [writes, &flags](std::size_t) {
            RunSpec spec;
            spec.clients = flags.quick ? 50 : 400;
            spec.key_space = 100'000;
            spec.ops_per_tx = 20;
            spec.write_fraction = writes;
            spec.warmup = std::chrono::milliseconds{400};
            spec.measure = std::chrono::milliseconds{900};
            flags.apply(spec);
            return spec;
          },
          flags.connected_protocols());
    }
    return 0;
  }

  for (const double writes : {0.25, 0.50}) {
    const int reads_pct = static_cast<int>((1.0 - writes) * 100);
    const std::vector<std::size_t> servers =
        flags.quick ? std::vector<std::size_t>{1, 4}
                    : std::vector<std::size_t>{1, 2, 4, 8, 16};
    char title[96];
    std::snprintf(title, sizeof(title), "Figure 5: server scaling, %d%% reads",
                  reads_pct);
    run_sweep(title, "servers", servers, [writes, &flags](std::size_t n) {
      RunSpec spec;
      spec.bed = TestBed::cloud(n);
      spec.clients = 400;
      spec.key_space = 100'000;
      spec.ops_per_tx = 20;
      spec.write_fraction = writes;
      // Few servers under 400 clients = deep queues: transactions take
      // seconds, so the measurement window must be wide enough to catch
      // completions at all.
      spec.warmup = std::chrono::milliseconds{400};
      spec.measure = std::chrono::milliseconds{900};
      flags.apply(spec);
      return spec;
    });
  }

  // Replication panel: same bed, shard groups swept at RF 1 vs 3 (RF 3
  // triples the physical servers; the x axis stays "groups").
  for (const std::size_t rf : {std::size_t{1}, std::size_t{3}}) {
    const std::vector<std::size_t> groups =
        flags.quick ? std::vector<std::size_t>{1, 2}
                    : std::vector<std::size_t>{1, 2, 4};
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Figure 5 (repl): 25%% writes, replication factor %zu", rf);
    run_sweep(title, "groups", groups, [rf, &flags](std::size_t n) {
      RunSpec spec;
      spec.bed = TestBed::cloud(n);
      spec.clients = 200;
      spec.key_space = 100'000;
      spec.ops_per_tx = 20;
      spec.write_fraction = 0.25;
      spec.replication_factor = rf;
      spec.warmup = std::chrono::milliseconds{400};
      spec.measure = std::chrono::milliseconds{900};
      flags.apply(spec);
      return spec;
    });
  }
  return 0;
}
