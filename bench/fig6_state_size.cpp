// Figure 6: number of locks and versions over time, GC on and off.
//
// Paper setup: local test bed, 50 clients, 20 ops/tx, 50% writes, 8K
// keys; the timestamp service purges every 15 s for the GC variant over
// a ~150 s run. We compress time (shorter run, faster purge period);
// the shape to reproduce: without metadata purging, lock and version
// counts grow linearly with time (MVTIL leaves ~1 frozen interval-
// compressed lock record per key per committed transaction; MVTO+
// accumulates versions); with GC both stay bounded at a few records
// per key.
#include <atomic>
#include <thread>

#include "bench_common.hpp"

namespace {

using namespace mvtl;
using namespace mvtl::bench;

struct Series {
  std::string name;
  std::vector<std::size_t> locks;
  std::vector<std::size_t> versions;
};

Series run_series(Protocol protocol, bool gc, int seconds) {
  RunSpec spec;
  spec.mvtil_delta_ticks = 5'000;
  Db db = make_db(protocol, spec);
  if (gc) {
    // Timestamp service: broadcast T = now − K (we use K = 500 ms at a
    // 1 s period; the paper uses K = 15 s at 15 s).
    db.start_gc(std::chrono::milliseconds{1'000}, 500'000);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 24; ++c) {
    clients.emplace_back([&, c] {
      WorkloadConfig wl;
      wl.key_space = 8'000;
      wl.ops_per_tx = 20;
      wl.write_fraction = 0.5;
      wl.seed = 7'000 + static_cast<std::uint64_t>(c);
      WorkloadGenerator gen(wl);
      const auto process = static_cast<ProcessId>(c + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)execute_tx(db.spi(), gen.next_tx(), process);
      }
    });
  }

  Series series;
  series.name = std::string(protocol_name(protocol)) + (gc ? "-GC" : "");
  for (int s = 0; s < seconds; ++s) {
    std::this_thread::sleep_for(std::chrono::seconds{1});
    const StoreStats stats = db.stats();
    series.locks.push_back(stats.lock_entries);
    series.versions.push_back(stats.versions);
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  return series;
}

}  // namespace

int main() {
  constexpr int kSeconds = 10;
  std::vector<Series> series;
  series.push_back(run_series(Protocol::kMvtoPlus, /*gc=*/false, kSeconds));
  series.push_back(run_series(Protocol::kMvtilEarly, /*gc=*/false, kSeconds));
  series.push_back(run_series(Protocol::kMvtilEarly, /*gc=*/true, kSeconds));

  std::vector<std::string> columns{"time(s)"};
  for (const Series& s : series) columns.push_back(s.name);

  Table locks(columns);
  Table versions(columns);
  for (int t = 0; t < kSeconds; ++t) {
    std::vector<std::string> lock_row{std::to_string(t + 1)};
    std::vector<std::string> ver_row{std::to_string(t + 1)};
    for (const Series& s : series) {
      lock_row.push_back(std::to_string(s.locks[static_cast<size_t>(t)]));
      ver_row.push_back(std::to_string(s.versions[static_cast<size_t>(t)]));
    }
    locks.add_row(std::move(lock_row));
    versions.add_row(std::move(ver_row));
  }

  std::printf("=== Figure 6 (a): number of lock records over time ===\n");
  std::printf("(MVTO+ keeps no interval locks; read timestamps ride on "
              "versions)\n");
  locks.print();
  std::printf("\n=== Figure 6 (b): number of versions over time ===\n");
  versions.print();
  return 0;
}
