// Ablation: leader-only vs follower-served read-only transactions.
//
// A read-mostly workload on a replicated cluster (2 shard groups × 3
// replicas, cloud bed), with all-read transactions declared read-only so
// they take the snapshot path (lock-free reads at the group's
// closed-timestamp floor, zero commit messages). The knob under test is
// ClusterConfig::follower_reads: off ⇒ the group leader serves every
// snapshot read; on ⇒ follower replicas serve them. Expected shape: with
// follower routing on, throughput rises and the leaders' executed-op
// share drops — replicas bought for availability double as read
// capacity — while the write path (and its messages) is untouched.
#include <cstdio>

#include "bench_common.hpp"
#include "dist/cluster.hpp"
#include "txbench/report.hpp"

namespace {

using namespace mvtl;
using namespace mvtl::bench;

struct AblRun {
  DriverResult driver;
  StoreStats stats;
  std::uint64_t leader_ops = 0;
  std::uint64_t total_ops = 0;
};

AblRun run_once(bool follower_reads) {
  ClusterConfig cluster;
  cluster.servers = 2;             // shard groups
  cluster.replication_factor = 3;  // 6 physical servers
  cluster.follower_reads = follower_reads;
  cluster.server_threads = 4;
  cluster.server_task_cost = std::chrono::microseconds{200};
  cluster.net = NetProfile::cloud();
  cluster.mvtil_delta_ticks = 5'000;
  cluster.key_space = 20'000;
  cluster.suspect_timeout = std::chrono::milliseconds{400};
  cluster.floor_lag_ticks = 50'000;  // 50 ms of read staleness budget
  Cluster c(DistProtocol::kMvtilEarly, cluster);

  DriverConfig driver;
  driver.clients = 120;
  driver.workload.key_space = 20'000;
  driver.workload.ops_per_tx = 8;
  driver.workload.write_fraction = 0.05;  // read-mostly: many all-read txs
  driver.workload.seed = 7;
  driver.retry_aborted = true;
  driver.max_restarts = 5;
  driver.declare_read_only = true;
  driver.warmup = std::chrono::milliseconds{500};
  driver.measure = std::chrono::milliseconds{1'000};

  AblRun run;
  run.driver = run_closed_loop(c.client(), driver);
  run.stats = c.client().stats();
  for (std::size_t i = 0; i < c.server_count(); ++i) {
    run.total_ops += c.server(i).served_ops();
    if (c.server(i).group_info().leading) {
      run.leader_ops += c.server(i).served_ops();
    }
  }
  return run;
}

}  // namespace

int main() {
  Table table({"snapshot reads served by", "txs/s", "commit rate",
               "msgs/tx", "follower reads", "leader op share",
               "max backlog"});
  for (const bool follower_reads : {false, true}) {
    const AblRun run = run_once(follower_reads);
    const double messages = static_cast<double>(run.stats.rpc_messages +
                                                run.stats.paxos_messages);
    const double leader_share =
        run.total_ops == 0
            ? 0.0
            : static_cast<double>(run.leader_ops) /
                  static_cast<double>(run.total_ops);
    table.add_row(
        {follower_reads ? "followers" : "leader only",
         fmt_double(run.driver.throughput_tps, 0),
         fmt_double(run.driver.commit_rate, 3),
         run.stats.committed_txs == 0
             ? "-"
             : fmt_double(messages / static_cast<double>(
                                         run.stats.committed_txs),
                          1),
         std::to_string(run.stats.follower_reads),
         fmt_double(leader_share, 2),
         std::to_string(run.stats.max_backlog)});
  }
  std::printf(
      "=== Ablation: follower-served read-only transactions (2 groups x 3 "
      "replicas, 5%% writes) ===\n");
  table.print();
  return 0;
}
