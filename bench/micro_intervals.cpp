// Microbenchmark: interval-set algebra — the inner loop of the lock
// table (interval compression, §6) and of the client-side commit
// intersection (Algorithm 1 line 13).
#include <benchmark/benchmark.h>

#include "micro_main.hpp"

#include "common/interval_set.hpp"
#include "common/rng.hpp"

namespace {

using namespace mvtl;

Interval iv(std::uint64_t lo, std::uint64_t hi) {
  return Interval{Timestamp{lo}, Timestamp{hi}};
}

IntervalSet make_set(std::size_t intervals, std::uint64_t stride,
                     std::uint64_t width, std::uint64_t offset = 0) {
  IntervalSet s;
  for (std::size_t i = 0; i < intervals; ++i) {
    const std::uint64_t lo = offset + i * stride;
    s.insert(iv(lo, lo + width));
  }
  return s;
}

void BM_InsertCoalescing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  for (auto _ : state) {
    IntervalSet s;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t lo = rng.next_below(100'000);
      s.insert(iv(lo, lo + rng.next_below(64)));
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_InsertCoalescing)->Arg(16)->Arg(256)->Arg(4096);

void BM_Intersect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const IntervalSet a = make_set(n, 100, 60);
  const IntervalSet b = make_set(n, 100, 60, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Intersect)->Arg(4)->Arg(64)->Arg(1024);

void BM_Subtract(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const IntervalSet base = make_set(n, 100, 90);
  for (auto _ : state) {
    IntervalSet s = base;
    s.subtract(iv(n * 25, n * 75));
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Subtract)->Arg(64)->Arg(1024);

void BM_ContainsPoint(benchmark::State& state) {
  const IntervalSet s = make_set(1024, 100, 60);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.contains(Timestamp{rng.next_below(110'000)}));
  }
}
BENCHMARK(BM_ContainsPoint);

void BM_CommitIntersection(benchmark::State& state) {
  // Models Algorithm 1 line 13: intersect ~20 per-key holding sets.
  const auto keys = static_cast<std::size_t>(state.range(0));
  std::vector<IntervalSet> holdings;
  for (std::size_t k = 0; k < keys; ++k) {
    holdings.push_back(make_set(3, 1'000, 900, k * 17));
  }
  for (auto _ : state) {
    IntervalSet t = IntervalSet::all();
    for (const IntervalSet& h : holdings) t = t.intersect(h);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(keys));
}
BENCHMARK(BM_CommitIntersection)->Arg(8)->Arg(20)->Arg(64);

}  // namespace

MVTL_MICRO_MAIN("micro_intervals")
