// Figure 7: throughput and commit rate as time passes, GC on and off.
//
// Paper setup: same workload as Figure 6 over 600 s; without purging,
// MVTIL and MVTO+ throughput decays after ~5 minutes because searching
// ever-longer version/lock lists gets slower; with GC, throughput stays
// flat and the GC overhead itself is small (compare the first windows of
// MVTIL-early vs MVTIL-GC). We compress time: a smaller key space makes
// per-key metadata grow ~40× faster, so the decay shows within seconds.
#include <atomic>
#include <thread>

#include "bench_common.hpp"
#include "txbench/metrics.hpp"

namespace {

using namespace mvtl;
using namespace mvtl::bench;

struct TimedSeries {
  std::string name;
  std::vector<double> tput;
  std::vector<double> rate;
};

TimedSeries run_series(Protocol protocol, bool gc, int windows) {
  RunSpec spec;
  spec.mvtil_delta_ticks = 5'000;
  Db db = make_db(protocol, spec);
  if (gc) {
    db.start_gc(std::chrono::milliseconds{1'000}, 500'000);
  }

  std::atomic<bool> stop{false};
  Metrics metrics;
  std::vector<std::thread> clients;
  for (int c = 0; c < 24; ++c) {
    clients.emplace_back([&, c] {
      WorkloadConfig wl;
      wl.key_space = 1'000;  // hot: metadata piles up fast
      wl.ops_per_tx = 20;
      wl.write_fraction = 0.5;
      wl.seed = 9'000 + static_cast<std::uint64_t>(c);
      WorkloadGenerator gen(wl);
      const auto process = static_cast<ProcessId>(c + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const CommitResult r = execute_tx(db.spi(), gen.next_tx(), process);
        if (r.committed()) {
          metrics.add_commit();
        } else {
          metrics.add_abort(AbortReason::kNone);
        }
      }
    });
  }

  TimedSeries series;
  series.name = std::string(protocol_name(protocol)) + (gc ? "-GC" : "");
  for (int w = 0; w < windows; ++w) {
    metrics.reset();
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::seconds{1});
    const std::chrono::duration<double> window =
        std::chrono::steady_clock::now() - start;
    series.tput.push_back(metrics.throughput_tps(window));
    series.rate.push_back(metrics.commit_rate());
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  return series;
}

}  // namespace

int main() {
  constexpr int kWindows = 18;
  std::vector<TimedSeries> series;
  series.push_back(run_series(Protocol::kMvtoPlus, /*gc=*/false, kWindows));
  series.push_back(run_series(Protocol::kTwoPl, /*gc=*/false, kWindows));
  series.push_back(run_series(Protocol::kMvtilEarly, /*gc=*/false, kWindows));
  series.push_back(run_series(Protocol::kMvtilEarly, /*gc=*/true, kWindows));

  std::vector<std::string> columns{"time(s)"};
  for (const TimedSeries& s : series) columns.push_back(s.name);

  Table tput(columns);
  Table rate(columns);
  for (int w = 0; w < kWindows; ++w) {
    std::vector<std::string> tput_row{std::to_string(w + 1)};
    std::vector<std::string> rate_row{std::to_string(w + 1)};
    for (const TimedSeries& s : series) {
      tput_row.push_back(fmt_double(s.tput[static_cast<size_t>(w)], 0));
      rate_row.push_back(fmt_double(s.rate[static_cast<size_t>(w)], 3));
    }
    tput.add_row(std::move(tput_row));
    rate.add_row(std::move(rate_row));
  }

  std::printf("=== Figure 7 (a): throughput (txs/s) as time passes ===\n");
  tput.print();
  std::printf("\n=== Figure 7 (b): commit rate as time passes ===\n");
  rate.print();
  return 0;
}
