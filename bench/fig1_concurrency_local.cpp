// Figure 1: effect of concurrency level on performance, local test bed.
//
// Paper setup: 3 servers on big LAN machines; transactions of 20
// operations, 25% writes, 10K keys; clients swept up to 600. Expected
// shape: MVTIL-early/late sustain the highest throughput and a commit
// rate near 1.0 as concurrency grows; MVTO+'s commit rate decays with
// conflicts; 2PL pays lock waiting.
// Flags (BenchFlags): --json=PATH --quick (the network/transport flags
// parse but are inert on the centralized local bed).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mvtl;
  using namespace mvtl::bench;

  const BenchFlags flags = BenchFlags::parse(argc, argv);
  const std::vector<std::size_t> clients =
      flags.quick ? std::vector<std::size_t>{30, 100}
                  : std::vector<std::size_t>{30, 100, 200, 400, 600};
  run_sweep("Figure 1: concurrency, local test bed", "clients", clients,
            [](std::size_t c) {
              RunSpec spec;
              spec.bed = TestBed::local();
              spec.clients = c;
              spec.key_space = 10'000;
              spec.ops_per_tx = 20;
              spec.write_fraction = 0.25;
              return spec;
            });
  return 0;
}
