// Shared main() for the micro_* benchmarks.
//
// Adds a `--json=PATH` flag on top of the stock google-benchmark
// driver: besides the usual console table, every per-iteration run is
// appended to PATH as one JSON object per row, in the flat schema the
// committed BENCH_micro.json baseline and scripts/perf_smoke consume:
//
//   [
//     {"bench": "micro_versions", "name": "BM_LatestBefore/64",
//      "ns_per_op": 49.1, "items_per_second": 0.0},
//     ...
//   ]
//
// Include this header once, at the end of the benchmark TU, in place
// of BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace mvtl::bench {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Console output as usual, plus one flat JSON row per run.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  JsonTeeReporter(std::string bench_name, std::ostream& json_out)
      : bench_name_(std::move(bench_name)), json_(json_out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      // GetAdjustedRealTime is per-iteration in the run's time unit;
      // normalize to nanoseconds so every row is comparable.
      double ns = run.GetAdjustedRealTime();
      switch (run.time_unit) {
        case benchmark::kSecond:
          ns *= 1e9;
          break;
        case benchmark::kMillisecond:
          ns *= 1e6;
          break;
        case benchmark::kMicrosecond:
          ns *= 1e3;
          break;
        default:
          break;
      }
      double items_per_second = 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) items_per_second = it->second.value;
      json_ << (first_ ? "" : ",\n") << "  {\"bench\": \""
            << json_escape(bench_name_) << "\", \"name\": \""
            << json_escape(run.benchmark_name()) << "\", \"threads\": "
            << run.threads << ", \"ns_per_op\": " << ns
            << ", \"items_per_second\": " << items_per_second << "}";
      first_ = false;
    }
  }

 private:
  const std::string bench_name_;
  std::ostream& json_;
  bool first_ = true;
};

inline int micro_main(const char* bench_name, int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "cannot open " << json_path << " for writing\n";
      return 1;
    }
    json << "[\n";
    JsonTeeReporter reporter(bench_name, json);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    json << "\n]\n";
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace mvtl::bench

#define MVTL_MICRO_MAIN(bench_name)                        \
  int main(int argc, char** argv) {                        \
    return mvtl::bench::micro_main(bench_name, argc, argv); \
  }
