// Ablation (Theorem 4): serial aborts under unsynchronized clocks.
//
// A strictly serial read-modify-write chain is executed by processes
// whose clocks are skewed by up to `skew` ticks. MVTO+-style timestamp
// ordering (MVTL-TO) aborts whenever a lagging process draws a timestamp
// below a committed read; MVTL-ε-clock with ε ≥ skew never aborts
// (Theorem 4). The sweep shows the abort rate as skew grows past ε.
#include <cstdio>

#include "api/db.hpp"
#include "txbench/report.hpp"

namespace {

using namespace mvtl;

constexpr std::uint64_t kEpsilon = 256;
constexpr int kProcesses = 16;
constexpr int kChainLength = 400;

std::shared_ptr<ClockSource> skewed_clock(std::int64_t skew) {
  auto base = std::make_shared<LogicalClock>(1'000'000);
  std::vector<std::int64_t> offsets;
  for (int p = 0; p < kProcesses; ++p) {
    offsets.push_back(p % 2 == 0 ? 0 : -skew);
  }
  return std::make_shared<SkewedClock>(base, std::move(offsets));
}

/// Runs the serial chain; returns the fraction of aborted transactions.
double serial_abort_rate(Db& db) {
  int aborted = 0;
  for (int i = 0; i < kChainLength; ++i) {
    TxOptions options;
    options.process = static_cast<ProcessId>(i % kProcesses);
    Transaction tx = db.begin(options);
    bool ok = tx.get("chain").ok();
    ok = ok && tx.put("chain", std::to_string(i)).ok();
    ok = ok && tx.commit().ok();
    if (!ok) ++aborted;
  }
  return static_cast<double>(aborted) / kChainLength;
}

}  // namespace

int main() {
  using mvtl::Table;

  std::printf("=== Serial aborts vs clock skew (epsilon = %llu ticks) ===\n",
              static_cast<unsigned long long>(kEpsilon));
  Table table({"skew", "MVTL-TO abort%", "MVTL-eps-clock abort%"});
  for (const std::int64_t skew : {0, 32, 128, 256, 512, 1024}) {
    Db to_db = Options().policy(Policy::to()).clock(skewed_clock(skew)).open();
    Db eps_db = Options()
                    .policy(Policy::eps_clock(kEpsilon))
                    .clock(skewed_clock(skew))
                    .open();

    table.add_row({std::to_string(skew),
                   fmt_double(serial_abort_rate(to_db) * 100, 1),
                   fmt_double(serial_abort_rate(eps_db) * 100, 1)});
  }
  table.print();
  std::printf(
      "\nShape check: MVTL-TO aborts as soon as skew > 0; the eps-clock "
      "policy holds 0%% up to skew <= epsilon (Theorem 4) and only starts "
      "aborting when the skew exceeds epsilon.\n");
  return 0;
}
