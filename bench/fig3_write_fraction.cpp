// Figure 3: effect of the fraction of write operations.
//
// Paper setup: local test bed, 90 clients, 20 ops/tx, 10K keys; write
// fraction swept 0..100%. Expected shape: all protocols agree on
// read-only workloads; at 100% writes the multiversion protocols commit
// nearly everything (blind writes never conflict) while 2PL still pays
// exclusive-lock waits; in the balanced middle MVTO+'s abort rate peaks
// and MVTIL holds the advantage.
#include "bench_common.hpp"

int main() {
  using namespace mvtl;
  using namespace mvtl::bench;

  const std::vector<int> write_pct = {0, 25, 50, 75, 100};
  run_sweep(
      "Figure 3: write fraction, local test bed", "write%", write_pct,
      [](int pct) {
        RunSpec spec;
        spec.bed = TestBed::local();
        spec.clients = 90;
        spec.key_space = 10'000;
        spec.ops_per_tx = 20;
        spec.write_fraction = pct / 100.0;
        return spec;
      },
      {Protocol::kMvtoPlus, Protocol::kTwoPl, Protocol::kMvtilEarly});
  return 0;
}
