// Figure 4: small transactions (8 operations, 50% writes).
//
// Paper setup: local test bed, 10K keys, clients swept. Expected shape:
// at low concurrency all protocols are close — this is the one setting
// where 2PL can edge out MVTIL (paper: ≈5% faster) — while at higher
// concurrency MVTIL pulls ahead again.
#include "bench_common.hpp"

int main() {
  using namespace mvtl;
  using namespace mvtl::bench;

  const std::vector<std::size_t> clients = {8, 60, 150, 300, 600};
  run_sweep("Figure 4: small transactions, local test bed", "clients",
            clients, [](std::size_t c) {
              RunSpec spec;
              spec.bed = TestBed::local();
              spec.clients = c;
              spec.key_space = 10'000;
              spec.ops_per_tx = 8;
              spec.write_fraction = 0.5;
              return spec;
            });
  return 0;
}
