// Figure 2: effect of concurrency level on performance, cloud test bed.
//
// Paper setup: 8 t2.micro servers (1 vCPU), jittery network, 50K keys,
// 20 ops/tx, 25% writes, clients swept to 400. Expected shape: same
// ordering as Figure 1 but with a larger MVTIL advantage (≈2×) because
// resources are scarce — aborted/blocked work is costlier.
//
// Panel (c) reports messages per committed transaction: with per-server
// op batching and the read-only fast path, a 20-op transaction costs a
// handful of messages instead of 20+ round trips. Panel (c') prices the
// same traffic in wire KB (counted at the codec boundary, so the figure
// is transport-independent).
//
// Flags (BenchFlags): --transport=sim|tcp --net-base-us=N
// --net-jitter-us=N --window=N — e.g. run the sweep over real loopback
// sockets, or widen the per-client pipeline instead of adding clients.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mvtl;
  using namespace mvtl::bench;

  const BenchFlags flags = BenchFlags::parse(argc, argv);
  const std::vector<std::size_t> clients =
      flags.quick ? std::vector<std::size_t>{30, 100}
                  : std::vector<std::size_t>{30, 100, 200, 400, 600};
  // --connect: same client sweep, but against the RUNNING multi-process
  // cluster (its own protocol only) instead of the simulated bed.
  const std::vector<Protocol> protocols =
      flags.connect.empty() ? all_protocols() : flags.connected_protocols();
  run_sweep(
      "Figure 2: concurrency, cloud test bed", "clients", clients,
      [&flags](std::size_t c) {
        RunSpec spec;
        spec.bed = TestBed::cloud(8);
        spec.clients = c;
        spec.key_space = 50'000;
        spec.ops_per_tx = 20;
        spec.write_fraction = 0.25;
        flags.apply(spec);
        return spec;
      },
      protocols);
  return 0;
}
