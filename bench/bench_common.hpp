// Shared plumbing for the figure benchmarks: build an engine for one
// protocol behind the Db facade, run the closed-loop driver, report
// throughput and commit rate in the paper's format (§8.3).
//
// Scale note: the paper measures 20 s windows on real test beds with up
// to 600 client machines/VMs; we run hundreds-of-milliseconds windows —
// against in-process centralized engines for the local bed, and against
// a simulated cluster of weak servers (src/dist/ over net/simnet) for
// the cloud beds of Figures 2 and 5 — so the whole suite finishes in
// minutes. Absolute tx/s are not comparable — the *relative* shape (who
// wins, where the crossovers are) is what these benches reproduce.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/db.hpp"
#include "obs/metrics.hpp"
#include "server/deploy.hpp"
#include "txbench/driver.hpp"
#include "txbench/report.hpp"

namespace mvtl::bench {

/// The four protocols of the paper's evaluation (§8.3).
enum class Protocol { kMvtoPlus, kTwoPl, kMvtilEarly, kMvtilLate };

inline const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kMvtoPlus:
      return "MVTO+";
    case Protocol::kTwoPl:
      return "2PL";
    case Protocol::kMvtilEarly:
      return "MVTIL-early";
    case Protocol::kMvtilLate:
      return "MVTIL-late";
  }
  return "?";
}

inline Policy protocol_policy(Protocol p, std::uint64_t mvtil_delta_ticks) {
  switch (p) {
    case Protocol::kMvtoPlus:
      return Policy::mvto_plus();
    case Protocol::kTwoPl:
      return Policy::two_phase_locking();
    case Protocol::kMvtilEarly:
      return Policy::mvtil(mvtil_delta_ticks, Early::kYes);
    case Protocol::kMvtilLate:
      return Policy::mvtil(mvtil_delta_ticks, Early::kNo);
  }
  return Policy::mvtil(mvtil_delta_ticks);
}

/// Which machines run the store. local() is the paper's big-LAN bed
/// compressed to one process (centralized engines, generous
/// parallelism); cloud(n) is the shared-VM bed — n weak servers (small
/// thread pool, per-request CPU cost ≈ a t2.micro vCPU) behind the
/// jittery simulated cloud network, driven through the distributed
/// client.
struct TestBed {
  std::string name;
  std::chrono::microseconds lock_timeout;
  std::size_t servers = 0;  // 0 ⇒ centralized in-process bed
  std::size_t server_threads = 0;
  std::chrono::microseconds server_task_cost{0};
  NetProfile net = NetProfile::local();

  bool distributed() const { return servers > 0; }

  static TestBed local() {
    return TestBed{"local", std::chrono::microseconds{10'000}};
  }

  static TestBed cloud(std::size_t n) {
    TestBed bed{"cloud", std::chrono::microseconds{10'000}};
    bed.servers = n;
    bed.server_threads = 4;
    bed.server_task_cost = std::chrono::microseconds{200};  // ≈ 1 weak vCPU
    bed.net = NetProfile::cloud();
    return bed;
  }
};

struct RunSpec {
  TestBed bed = TestBed::local();
  std::size_t clients = 30;
  std::uint64_t key_space = 10'000;
  std::size_t ops_per_tx = 20;
  double write_fraction = 0.25;
  std::chrono::milliseconds warmup{100};
  std::chrono::milliseconds measure{300};
  std::uint64_t mvtil_delta_ticks = 5'000;  // Δ = 5 ms in µs ticks
  std::uint64_t seed = 1;
  /// Distributed beds only: replicas per shard group (src/repl/).
  std::size_t replication_factor = 1;
  /// Route declared-read-only snapshot reads to follower replicas.
  bool follower_reads = true;
  /// Declare all-read transactions read-only (snapshot path).
  bool declare_read_only = false;
  /// Distributed beds: which transport carries the wire messages
  /// (kDefault = sim, or whatever MVTL_TRANSPORT says).
  TransportKind transport = TransportKind::kDefault;
  /// In-flight transactions per client (txbench pipelining window).
  std::size_t window = 1;
  /// Non-empty: attach to an already-running multi-process cluster
  /// described by this deploy-config file instead of spawning servers
  /// (the cluster's own protocol/layout win over this spec's).
  std::string connect_config;
};

/// Machine-readable results, accumulated across every run_sweep of the
/// process and rewritten to one JSON file after each data point (so a
/// partial run still leaves valid JSON behind). Enabled by --json=PATH.
struct JsonSink {
  std::string path;
  std::vector<std::string> rows;  // serialized objects, one per run
};

inline JsonSink& json_sink() {
  static JsonSink sink;
  return sink;
}

/// Command-line overrides shared by the distributed figure benches:
///   --transport=sim|tcp     transport selection (default: sim / env)
///   --net-base-us=N         SimNetwork base latency override
///   --net-jitter-us=N       SimNetwork jitter override
///   --window=N              in-flight transactions per client
///   --json=PATH             also write results as a JSON array
///   --quick                 reduced sweeps (CI smoke: shape, not data)
///   --connect=FILE          measure a RUNNING multi-process cluster
///                           (scripts/mvtl_cluster.sh) instead of the
///                           simulated bed; only the cluster's own
///                           protocol is swept
struct BenchFlags {
  TransportKind transport = TransportKind::kDefault;
  std::optional<std::chrono::microseconds> net_base;
  std::optional<std::chrono::microseconds> net_jitter;
  std::size_t window = 1;
  bool quick = false;
  std::string connect;

  static BenchFlags parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--transport=", 12) == 0) {
        const char* value = arg + 12;
        if (std::strcmp(value, "tcp") == 0) {
          flags.transport = TransportKind::kTcp;
        } else if (std::strcmp(value, "sim") == 0) {
          flags.transport = TransportKind::kSim;
        } else {
          std::fprintf(stderr, "--transport must be sim or tcp, got: %s\n",
                       value);
          std::exit(2);
        }
      } else if (std::strncmp(arg, "--net-base-us=", 14) == 0) {
        flags.net_base = std::chrono::microseconds{std::atoll(arg + 14)};
      } else if (std::strncmp(arg, "--net-jitter-us=", 16) == 0) {
        flags.net_jitter = std::chrono::microseconds{std::atoll(arg + 16)};
      } else if (std::strncmp(arg, "--window=", 9) == 0) {
        const long long w = std::atoll(arg + 9);
        flags.window = w > 0 ? static_cast<std::size_t>(w) : 1;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        json_sink().path = arg + 7;
      } else if (std::strcmp(arg, "--quick") == 0) {
        flags.quick = true;
      } else if (std::strncmp(arg, "--connect=", 10) == 0) {
        flags.connect = arg + 10;
      } else {
        std::fprintf(stderr,
                     "unknown flag: %s\nflags: --transport=sim|tcp "
                     "--net-base-us=N --net-jitter-us=N --window=N "
                     "--json=PATH --quick --connect=FILE\n",
                     arg);
        std::exit(2);
      }
    }
    return flags;
  }

  void apply(RunSpec& spec) const {
    spec.transport = transport;
    spec.window = window;
    spec.connect_config = connect;
    // The remote cluster's range sharding covers ITS key space; the
    // workload must not generate keys outside it.
    if (!connect.empty()) {
      spec.key_space = load_deploy_config(connect).key_space;
    }
    if (net_base) spec.bed.net.base = *net_base;
    if (net_jitter) spec.bed.net.jitter = *net_jitter;
  }

  /// --connect mode sweeps only the protocol the running cluster was
  /// deployed with (a client must speak its cluster's protocol).
  std::vector<Protocol> connected_protocols() const {
    switch (load_deploy_config(connect).protocol) {
      case DistProtocol::kTo:
        return {Protocol::kMvtoPlus};
      case DistProtocol::kPessimistic:
        return {Protocol::kTwoPl};
      case DistProtocol::kMvtilEarly:
        return {Protocol::kMvtilEarly};
      case DistProtocol::kMvtilLate:
        return {Protocol::kMvtilLate};
    }
    return {Protocol::kMvtilEarly};
  }
};

/// The distributed run of each protocol: the MVTIL variants natively,
/// the baselines through the MVTL unification (§5.4: MVTL-TO ≡ MVTO+,
/// MVTL-Pessimistic ≡ 2PL), all over the same commitment machinery.
inline DistProtocol dist_protocol_for(Protocol p) {
  switch (p) {
    case Protocol::kMvtoPlus:
      return DistProtocol::kTo;
    case Protocol::kTwoPl:
      return DistProtocol::kPessimistic;
    case Protocol::kMvtilEarly:
      return DistProtocol::kMvtilEarly;
    case Protocol::kMvtilLate:
      return DistProtocol::kMvtilLate;
  }
  return DistProtocol::kMvtilEarly;
}

inline Db make_db(Protocol protocol, const RunSpec& spec) {
  if (!spec.connect_config.empty()) {
    // Remote client against a running multi-process deployment: the
    // cluster's file dictates protocol and layout; this spec only
    // shapes the client-side workload.
    const DeployConfig deploy = load_deploy_config(spec.connect_config);
    return Options()
        .policy(Policy::distributed(deploy.protocol,
                                    deploy.to_cluster_config(/*local=*/{})))
        .open();
  }
  if (spec.bed.distributed()) {
    ClusterConfig cluster;
    cluster.servers = spec.bed.servers;
    cluster.server_threads = spec.bed.server_threads;
    cluster.server_task_cost = spec.bed.server_task_cost;
    cluster.net = spec.bed.net;
    cluster.mvtil_delta_ticks = spec.mvtil_delta_ticks;
    cluster.lock_timeout = spec.bed.lock_timeout;
    cluster.key_space = spec.key_space;
    cluster.seed = spec.seed;
    cluster.replication_factor = spec.replication_factor;
    cluster.follower_reads = spec.follower_reads;
    cluster.transport = spec.transport;
    // Deep request queues on the weak cloud servers can keep a perfectly
    // live transaction away from a shard for a long time; suspicion is
    // for crashes, not congestion, so keep it far above queueing delays.
    cluster.suspect_timeout = std::chrono::seconds{5};
    return Options()
        .policy(Policy::distributed(dist_protocol_for(protocol), cluster))
        .open();
  }
  return Options()
      .policy(protocol_policy(protocol, spec.mvtil_delta_ticks))
      .lock_timeout(spec.bed.lock_timeout)
      .open();
}

/// One protocol's run plus its post-run store stats — the distributed
/// beds report messages-per-committed-transaction from the latter —
/// and, for distributed beds, the servers' merged metrics registries
/// (per-RPC server-side latency histograms for the JSON rows).
struct ProtocolRun {
  DriverResult driver;
  StoreStats stats;
  obs::MetricsSnapshot server_metrics;
  bool has_server_metrics = false;
};

inline ProtocolRun run_protocol(Protocol protocol, const RunSpec& spec) {
  Db db = make_db(protocol, spec);

  DriverConfig driver;
  driver.clients = spec.clients;
  driver.window = spec.window;
  driver.workload.key_space = spec.key_space;
  driver.workload.ops_per_tx = spec.ops_per_tx;
  driver.workload.write_fraction = spec.write_fraction;
  driver.workload.seed = spec.seed;
  driver.warmup = spec.warmup;
  driver.measure = spec.measure;
  // MVTIL clients restart a doomed transaction with an adjusted interval
  // (§8.1: "it has the option of aborting or restarting the transaction,
  // with an interval I adjusted based on the state it has already seen").
  // MVTO+ and 2PL aborts are terminal, as in the paper's measurements.
  if (protocol == Protocol::kMvtilEarly || protocol == Protocol::kMvtilLate) {
    driver.retry_aborted = true;
    driver.max_restarts = 5;
  }
  driver.declare_read_only = spec.declare_read_only;
  ProtocolRun run{run_closed_loop(db.spi(), driver), {}};
  run.stats = db.stats();
  if (auto* store = dynamic_cast<ClusterStore*>(&db.spi())) {
    run.server_metrics = store->cluster().merged_metrics();
    run.has_server_metrics = true;
  }
  return run;
}

/// Escapes `s` for a JSON string literal (figure titles carry quotes-
/// free prose, but stay defensive).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

/// Appends one (x, protocol) data point to the --json sink and rewrites
/// the whole file, keeping it valid JSON at every point of the run.
inline void json_record(const std::string& figure, const std::string& x_label,
                        std::uint64_t x, Protocol protocol,
                        const ProtocolRun& run) {
  JsonSink& sink = json_sink();
  if (sink.path.empty()) return;
  const double committed = static_cast<double>(run.stats.committed_txs);
  const double messages = static_cast<double>(run.stats.rpc_messages +
                                              run.stats.paxos_messages);
  const double wire_kb =
      static_cast<double>(run.stats.bytes_sent + run.stats.bytes_received) /
      1024.0;
  std::ostringstream row;
  row << "  {\"figure\": \"" << json_escape(figure) << "\", "
      << "\"x_label\": \"" << json_escape(x_label) << "\", "
      << "\"x\": " << x << ", "
      << "\"protocol\": \"" << protocol_name(protocol) << "\", "
      << "\"tps\": " << run.driver.throughput_tps << ", "
      << "\"commit_rate\": " << run.driver.commit_rate << ", "
      << "\"committed\": " << run.driver.committed << ", "
      << "\"aborted\": " << run.driver.aborted << ", "
      << "\"p50_us\": " << run.driver.p50_us << ", "
      << "\"p99_us\": " << run.driver.p99_us << ", "
      << "\"msgs_per_tx\": " << (committed > 0 ? messages / committed : 0.0)
      << ", "
      << "\"wire_kb_per_tx\": " << (committed > 0 ? wire_kb / committed : 0.0)
      << ", "
      << "\"max_backlog\": " << run.stats.max_backlog;
  row << ", \"aborts_by_reason\": {";
  bool first = true;
  for (std::size_t i = 0; i < kAbortReasonCount; ++i) {
    if (run.driver.aborts_by_reason[i] == 0) continue;
    if (!first) row << ", ";
    first = false;
    row << "\"" << abort_reason_name(static_cast<AbortReason>(i))
        << "\": " << run.driver.aborts_by_reason[i];
  }
  row << "}";
  if (run.has_server_metrics) {
    // Server-side per-RPC latency quantiles (µs), merged over all
    // servers — the gap to the client-observed p50/p99 above is
    // transport + queueing.
    row << ", \"rpc_server_us\": {";
    first = true;
    for (const auto& [name, h] : run.server_metrics.histograms) {
      constexpr const char* kPrefix = "rpc.";
      constexpr const char* kSuffix = ".latency_us";
      if (h.count == 0 || name.rfind(kPrefix, 0) != 0 ||
          name.size() <= std::strlen(kSuffix) ||
          name.compare(name.size() - std::strlen(kSuffix),
                       std::strlen(kSuffix), kSuffix) != 0) {
        continue;
      }
      if (!first) row << ", ";
      first = false;
      const std::string rpc = name.substr(
          std::strlen(kPrefix),
          name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
      row << "\"" << json_escape(rpc) << "\": {\"count\": " << h.count
          << ", \"p50\": " << h.quantile(0.50)
          << ", \"p99\": " << h.quantile(0.99) << "}";
    }
    row << "}";
  }
  row << "}";
  sink.rows.push_back(row.str());

  std::ofstream out(sink.path);
  out << "[\n";
  for (std::size_t i = 0; i < sink.rows.size(); ++i) {
    out << sink.rows[i] << (i + 1 < sink.rows.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

inline const std::vector<Protocol>& all_protocols() {
  static const std::vector<Protocol> kProtocols = {
      Protocol::kMvtoPlus, Protocol::kTwoPl, Protocol::kMvtilEarly,
      Protocol::kMvtilLate};
  return kProtocols;
}

/// Runs the x-axis sweep and prints the paper-style panels:
/// (a) throughput (txs/s) and (b) commit rate — plus, for distributed
/// beds, (c) messages per committed transaction (client RPCs + register
/// traffic over commits; the batching and read-only fast-path savings
/// show up here) and (d) the worst server-executor backlog high-water
/// mark (the overload indicator: deep queues mean the servers, not the
/// protocol, are the bottleneck).
template <typename XValues, typename MakeSpec>
void run_sweep(const std::string& figure, const std::string& x_label,
               const XValues& xs, MakeSpec&& make_spec,
               const std::vector<Protocol>& protocols = all_protocols()) {
  std::vector<std::string> columns{x_label};
  for (Protocol p : protocols) columns.push_back(protocol_name(p));

  Table throughput(columns);
  Table commit_rate(columns);
  Table msgs_per_tx(columns);
  Table bytes_per_tx(columns);
  Table max_backlog(columns);
  bool distributed = false;
  for (const auto& x : xs) {
    std::vector<std::string> tput_row{std::to_string(x)};
    std::vector<std::string> rate_row{std::to_string(x)};
    std::vector<std::string> msgs_row{std::to_string(x)};
    std::vector<std::string> bytes_row{std::to_string(x)};
    std::vector<std::string> backlog_row{std::to_string(x)};
    for (Protocol p : protocols) {
      const RunSpec spec = make_spec(x);
      distributed |= spec.bed.distributed() || !spec.connect_config.empty();
      const ProtocolRun run = run_protocol(p, spec);
      json_record(figure, x_label, static_cast<std::uint64_t>(x), p, run);
      tput_row.push_back(fmt_double(run.driver.throughput_tps, 0));
      rate_row.push_back(fmt_double(run.driver.commit_rate, 3));
      const double messages = static_cast<double>(run.stats.rpc_messages +
                                                  run.stats.paxos_messages);
      const double wire_kb = static_cast<double>(run.stats.bytes_sent +
                                                 run.stats.bytes_received) /
                             1024.0;
      msgs_row.push_back(
          run.stats.committed_txs == 0
              ? "-"
              : fmt_double(messages /
                               static_cast<double>(run.stats.committed_txs),
                           1));
      bytes_row.push_back(
          run.stats.committed_txs == 0
              ? "-"
              : fmt_double(wire_kb /
                               static_cast<double>(run.stats.committed_txs),
                           2));
      backlog_row.push_back(std::to_string(run.stats.max_backlog));
    }
    throughput.add_row(std::move(tput_row));
    commit_rate.add_row(std::move(rate_row));
    msgs_per_tx.add_row(std::move(msgs_row));
    bytes_per_tx.add_row(std::move(bytes_row));
    max_backlog.add_row(std::move(backlog_row));
  }

  std::printf("=== %s (a) Throughput (txs/s) ===\n", figure.c_str());
  throughput.print();
  std::printf("\n=== %s (b) Commit rate ===\n", figure.c_str());
  commit_rate.print();
  if (distributed) {
    std::printf("\n=== %s (c) Messages per committed tx ===\n",
                figure.c_str());
    msgs_per_tx.print();
    std::printf("\n=== %s (c') Wire KB per committed tx ===\n",
                figure.c_str());
    bytes_per_tx.print();
    std::printf("\n=== %s (d) Max server backlog ===\n", figure.c_str());
    max_backlog.print();
  }
}

}  // namespace mvtl::bench
