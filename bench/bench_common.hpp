// Shared plumbing for the figure benchmarks: build a cluster for one
// protocol, run the closed-loop driver, report throughput and commit rate
// in the paper's format (§8.3).
//
// Scale note: the paper measures 20 s windows on real test beds with up
// to 600 client machines/VMs; we run hundreds-of-milliseconds windows
// in-process so the whole suite finishes in minutes. Absolute tx/s are
// not comparable — the *relative* shape (who wins, where the crossovers
// are) is what these benches reproduce.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dist/cluster.hpp"
#include "txbench/driver.hpp"
#include "txbench/report.hpp"

namespace mvtl::bench {

struct TestBed {
  std::string name;
  std::size_t servers;
  std::size_t server_threads;
  NetProfile net;
  std::chrono::microseconds lock_timeout;
  std::chrono::microseconds op_cost;

  /// ≈ the paper's three-machine LAN test bed: fast multiprocessors —
  /// request handling is cheap and parallel.
  static TestBed local(std::size_t servers = 3) {
    return TestBed{"local",
                   servers,
                   8,
                   NetProfile::local(),
                   std::chrono::microseconds{10'000},
                   std::chrono::microseconds{5}};
  }

  /// ≈ the paper's t2.micro cloud test bed: one weak vCPU per server and
  /// a jittery network — wasted work (aborts, lock retries) eats real
  /// capacity.
  static TestBed cloud(std::size_t servers = 8) {
    return TestBed{"cloud",
                   servers,
                   1,
                   NetProfile::cloud(),
                   std::chrono::microseconds{30'000},
                   std::chrono::microseconds{40}};
  }
};

struct RunSpec {
  TestBed bed = TestBed::local();
  std::size_t clients = 30;
  std::uint64_t key_space = 10'000;
  std::size_t ops_per_tx = 20;
  double write_fraction = 0.25;
  std::chrono::milliseconds warmup{100};
  std::chrono::milliseconds measure{300};
  std::uint64_t mvtil_delta_ticks = 5'000;  // Δ = 5 ms in µs ticks
  std::uint64_t seed = 1;
};

inline DriverResult run_protocol(DistProtocol protocol, const RunSpec& spec) {
  ClusterConfig config;
  config.servers = spec.bed.servers;
  config.server_threads = spec.bed.server_threads;
  config.net = spec.bed.net;
  config.lock_timeout = spec.bed.lock_timeout;
  config.server_op_cost = spec.bed.op_cost;
  config.mvtil_delta_ticks = spec.mvtil_delta_ticks;
  config.net_seed = spec.seed;
  Cluster cluster(protocol, config);

  DriverConfig driver;
  driver.clients = spec.clients;
  driver.workload.key_space = spec.key_space;
  driver.workload.ops_per_tx = spec.ops_per_tx;
  driver.workload.write_fraction = spec.write_fraction;
  driver.workload.seed = spec.seed;
  driver.warmup = spec.warmup;
  driver.measure = spec.measure;
  // MVTIL clients restart a doomed transaction with an adjusted interval
  // (§8.1: "it has the option of aborting or restarting the transaction,
  // with an interval I adjusted based on the state it has already seen").
  // MVTO+ and 2PL aborts are terminal, as in the paper's measurements.
  if (protocol == DistProtocol::kMvtilEarly ||
      protocol == DistProtocol::kMvtilLate) {
    driver.retry_aborted = true;
    driver.max_restarts = 5;
  }
  return run_closed_loop(cluster.client(), driver);
}

inline const std::vector<DistProtocol>& all_protocols() {
  static const std::vector<DistProtocol> kProtocols = {
      DistProtocol::kMvtoPlus, DistProtocol::kTwoPl,
      DistProtocol::kMvtilEarly, DistProtocol::kMvtilLate};
  return kProtocols;
}

/// Runs the x-axis sweep and prints two paper-style panels:
/// (a) throughput (txs/s) and (b) commit rate.
template <typename XValues, typename MakeSpec>
void run_sweep(const std::string& figure, const std::string& x_label,
               const XValues& xs, MakeSpec&& make_spec,
               const std::vector<DistProtocol>& protocols = all_protocols()) {
  std::vector<std::string> columns{x_label};
  for (DistProtocol p : protocols) columns.push_back(dist_protocol_name(p));

  Table throughput(columns);
  Table commit_rate(columns);
  for (const auto& x : xs) {
    std::vector<std::string> tput_row{std::to_string(x)};
    std::vector<std::string> rate_row{std::to_string(x)};
    for (DistProtocol p : protocols) {
      const RunSpec spec = make_spec(x);
      const DriverResult r = run_protocol(p, spec);
      tput_row.push_back(fmt_double(r.throughput_tps, 0));
      rate_row.push_back(fmt_double(r.commit_rate, 3));
    }
    throughput.add_row(std::move(tput_row));
    commit_rate.add_row(std::move(rate_row));
  }

  std::printf("=== %s (a) Throughput (txs/s) ===\n", figure.c_str());
  throughput.print();
  std::printf("\n=== %s (b) Commit rate ===\n", figure.c_str());
  commit_rate.print();
}

}  // namespace mvtl::bench
