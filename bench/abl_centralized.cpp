// Ablation: the centralized engines head-to-head, plus the MVTIL Δ sweep.
//
// Part 1 compares every centralized engine (all MVTL policies, MVTO+,
// 2PL) on a common mixed workload — the design-space overview DESIGN.md
// calls out. Part 2 sweeps MVTIL's interval width Δ: too small and the
// interval collapses under contention (aborts); large enough and the
// commit rate saturates (each transaction only needs one surviving
// point). Every engine is built through the Db facade — one Options call
// per row.
#include <cstdio>

#include "api/db.hpp"
#include "txbench/driver.hpp"
#include "txbench/report.hpp"

namespace {

using namespace mvtl;

DriverResult run_engine(Db& db, double write_fraction) {
  DriverConfig driver;
  driver.clients = 8;
  driver.workload.key_space = 512;
  driver.workload.ops_per_tx = 10;
  driver.workload.write_fraction = write_fraction;
  driver.workload.seed = 17;
  driver.warmup = std::chrono::milliseconds{50};
  driver.measure = std::chrono::milliseconds{250};
  return run_closed_loop(db.spi(), driver);
}

}  // namespace

int main() {
  using mvtl::Table;

  std::printf("=== Centralized engines, 10-op transactions, 512 keys ===\n");
  Table table({"engine", "tput 25%w (tx/s)", "rate 25%w", "tput 75%w (tx/s)",
               "rate 75%w"});

  const std::vector<std::pair<std::string, Policy>> engines = {
      {"MVTL-TO", Policy::to()},
      {"MVTL-Ghostbuster", Policy::ghostbuster()},
      {"MVTL-Pessimistic", Policy::pessimistic()},
      {"MVTL-eps-clock", Policy::eps_clock(200)},
      {"MVTL-Pref", Policy::pref({-200, -400, -800})},
      {"MVTL-Prio", Policy::prio()},
      {"MVTIL-early", Policy::mvtil(5'000, Early::kYes)},
      {"MVTIL-late", Policy::mvtil(5'000, Early::kNo)},
      {"MVTO+", Policy::mvto_plus()},
      {"2PL", Policy::two_phase_locking()},
  };

  for (const auto& [name, policy] : engines) {
    std::vector<std::string> row{name};
    for (const double w : {0.25, 0.75}) {
      Db db = Options().policy(policy).open();
      const DriverResult r = run_engine(db, w);
      row.push_back(fmt_double(r.throughput_tps, 0));
      row.push_back(fmt_double(r.commit_rate, 3));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\n=== MVTIL interval width ablation (Δ in µs ticks) ===\n");
  Table delta_table({"delta", "tput (tx/s)", "commit rate"});
  for (const std::uint64_t delta : {10, 100, 1'000, 5'000, 50'000}) {
    Db db = Options().policy(Policy::mvtil(delta, Early::kYes)).open();
    const DriverResult r = run_engine(db, 0.5);
    delta_table.add_row({std::to_string(delta),
                         fmt_double(r.throughput_tps, 0),
                         fmt_double(r.commit_rate, 3)});
  }
  delta_table.print();
  return 0;
}
