// Ablation: the centralized engines head-to-head, plus the MVTIL Δ sweep.
//
// Part 1 compares every centralized engine (all MVTL policies, MVTO+,
// 2PL) on a common mixed workload — the design-space overview DESIGN.md
// calls out. Part 2 sweeps MVTIL's interval width Δ: too small and the
// interval collapses under contention (aborts); large enough and the
// commit rate saturates (each transaction only needs one surviving
// point).
#include <cstdio>

#include "baselines/mvto_plus.hpp"
#include "baselines/two_phase_locking.hpp"
#include "core/mvtl_engine.hpp"
#include "core/policy.hpp"
#include "txbench/driver.hpp"
#include "txbench/report.hpp"

namespace {

using namespace mvtl;

DriverResult run_engine(TransactionalStore& engine, double write_fraction) {
  DriverConfig driver;
  driver.clients = 8;
  driver.workload.key_space = 512;
  driver.workload.ops_per_tx = 10;
  driver.workload.write_fraction = write_fraction;
  driver.workload.seed = 17;
  driver.warmup = std::chrono::milliseconds{50};
  driver.measure = std::chrono::milliseconds{250};
  return run_closed_loop(engine, driver);
}

}  // namespace

int main() {
  using mvtl::Table;

  std::printf("=== Centralized engines, 10-op transactions, 512 keys ===\n");
  Table table({"engine", "tput 25%w (tx/s)", "rate 25%w", "tput 75%w (tx/s)",
               "rate 75%w"});

  auto add_engine = [&](const std::string& name,
                        auto&& factory) {
    std::vector<std::string> row{name};
    for (const double w : {0.25, 0.75}) {
      auto engine = factory();
      const DriverResult r = run_engine(*engine, w);
      row.push_back(fmt_double(r.throughput_tps, 0));
      row.push_back(fmt_double(r.commit_rate, 3));
    }
    table.add_row(std::move(row));
  };

  auto clock_factory = [] {
    return std::make_shared<SystemClock>();
  };
  auto mvtl_engine = [&](std::shared_ptr<MvtlPolicy> policy) {
    MvtlEngineConfig config;
    config.clock = clock_factory();
    return std::make_unique<MvtlEngine>(std::move(policy), config);
  };

  add_engine("MVTL-TO", [&] { return mvtl_engine(make_to_policy()); });
  add_engine("MVTL-Ghostbuster",
             [&] { return mvtl_engine(make_ghostbuster_policy()); });
  add_engine("MVTL-Pessimistic",
             [&] { return mvtl_engine(make_pessimistic_policy()); });
  add_engine("MVTL-eps-clock",
             [&] { return mvtl_engine(make_eps_clock_policy(200)); });
  add_engine("MVTL-Pref", [&] {
    return mvtl_engine(make_pref_policy({-200, -400, -800}));
  });
  add_engine("MVTL-Prio", [&] { return mvtl_engine(make_prio_policy()); });
  add_engine("MVTIL-early", [&] {
    return mvtl_engine(make_mvtil_policy(5'000, true, true));
  });
  add_engine("MVTIL-late", [&] {
    return mvtl_engine(make_mvtil_policy(5'000, false, true));
  });
  add_engine("MVTO+", [&] {
    MvtoConfig config;
    config.clock = clock_factory();
    return std::make_unique<MvtoPlusEngine>(std::move(config));
  });
  add_engine("2PL", [&] {
    TwoPlConfig config;
    config.clock = clock_factory();
    return std::make_unique<TwoPhaseLockingEngine>(std::move(config));
  });
  table.print();

  std::printf("\n=== MVTIL interval width ablation (Δ in µs ticks) ===\n");
  Table delta_table({"delta", "tput (tx/s)", "commit rate"});
  for (const std::uint64_t delta : {10, 100, 1'000, 5'000, 50'000}) {
    MvtlEngineConfig config;
    config.clock = std::make_shared<SystemClock>();
    MvtlEngine engine(make_mvtil_policy(delta, true, true), config);
    const DriverResult r = run_engine(engine, 0.5);
    delta_table.add_row({std::to_string(delta),
                         fmt_double(r.throughput_tps, 0),
                         fmt_double(r.commit_rate, 3)});
  }
  delta_table.print();
  return 0;
}
