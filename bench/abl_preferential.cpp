// Ablation (Theorem 2): MVTL-Pref commits strictly more workloads than
// MVTO+ when the alternatives A(t) lie below the preferential timestamp.
//
// Part 1 replays many instances of the Theorem 2(b) workload
//   W1(Y) C1  R2(X) R3(Y) C3  W2(Y) C2   (t1 < t2 < t3, max A(t2) < t1)
// Part 2 runs a concurrent mixed workload and compares commit rates.
#include <cstdio>
#include <utility>

#include "api/db.hpp"
#include "txbench/driver.hpp"
#include "txbench/report.hpp"

namespace {

using namespace mvtl;

int run_theorem2_workloads(Db& db, ManualClock& clock, int rounds) {
  int t2_commits = 0;
  for (int i = 0; i < rounds; ++i) {
    const Key x = "X" + std::to_string(i);
    const Key y = "Y" + std::to_string(i);
    const std::uint64_t base = 1'000 + static_cast<std::uint64_t>(i) * 1'000;

    clock.set(base + 100);  // t1
    Transaction t1 = db.begin(TxOptions{.process = 1});
    (void)t1.put(y, "y1");
    (void)t1.commit();

    clock.set(base + 200);  // t2
    Transaction t2 = db.begin(TxOptions{.process = 2});
    (void)t2.get(x);

    clock.set(base + 300);  // t3
    Transaction t3 = db.begin(TxOptions{.process = 3});
    (void)t3.get(y);
    (void)t3.commit();

    (void)t2.put(y, "y2");
    if (t2.commit().ok()) ++t2_commits;
  }
  return t2_commits;
}

double concurrent_commit_rate(Policy policy) {
  Db db = Options()
              .policy(std::move(policy))
              .clock(std::make_shared<LogicalClock>(1'000'000))
              .open();
  DriverConfig driver;
  driver.clients = 8;
  driver.workload.key_space = 96;
  driver.workload.ops_per_tx = 8;
  driver.workload.write_fraction = 0.3;
  driver.workload.seed = 5;
  const DriverResult r = run_fixed_count(db.spi(), driver, 250);
  return r.commit_rate;
}

}  // namespace

int main() {
  using mvtl::Table;
  constexpr int kRounds = 300;

  Table t2_table({"algorithm", "T2 commits", "out of"});
  for (const auto& [label, policy] :
       {std::pair<const char*, Policy>{"MVTL-TO (= MVTO+)", Policy::to()},
        std::pair<const char*, Policy>{"MVTL-Pref A(t)={t-150}",
                                       Policy::pref({-150})}}) {
    auto clock = std::make_shared<ManualClock>(1);
    Db db = Options().policy(policy).clock(clock).open();
    t2_table.add_row(
        {label, std::to_string(run_theorem2_workloads(db, *clock, kRounds)),
         std::to_string(kRounds)});
  }
  std::printf("=== Theorem 2(b) workload: does T2 commit? ===\n");
  t2_table.print();

  std::printf("\n=== Concurrent mixed workload: commit rate ===\n");
  Table rate_table({"algorithm", "commit rate"});
  rate_table.add_row(
      {"MVTL-TO", fmt_double(concurrent_commit_rate(Policy::to()), 3)});
  rate_table.add_row(
      {"MVTL-Pref", fmt_double(concurrent_commit_rate(
                                   Policy::pref({-64, -128, -256})),
                               3)});
  rate_table.print();
  std::printf(
      "\nShape check: MVTL-Pref commits every Theorem-2 workload that "
      "MVTL-TO aborts. Theorem 2(a)'s domination is per-workload (same "
      "operation/timestamp sequences); under a live concurrent run the "
      "schedules diverge, so the aggregate commit rates are merely "
      "comparable.\n");
  return 0;
}
