// Ablation (Theorem 3): the prioritizer. Critical transactions are never
// aborted by normal ones; normal transactions behave like MVTO+.
//
// A mixed workload marks a fraction of transactions critical and counts
// abort rates per class under MVTL-Prio, against MVTL-TO (which has no
// priority mechanism — "critical" transactions abort like any other).
#include <atomic>
#include <cstdio>
#include <thread>

#include "api/db.hpp"
#include "common/rng.hpp"
#include "txbench/driver.hpp"
#include "txbench/report.hpp"

namespace {

using namespace mvtl;

struct ClassStats {
  std::atomic<std::uint64_t> critical_commits{0};
  std::atomic<std::uint64_t> critical_aborts{0};
  std::atomic<std::uint64_t> normal_commits{0};
  std::atomic<std::uint64_t> normal_aborts{0};
};

void run_mixed(Db& db, ClassStats& stats) {
  std::vector<std::thread> threads;
  for (int c = 0; c < 8; ++c) {
    threads.emplace_back([&, c] {
      WorkloadConfig wl;
      wl.key_space = 64;
      wl.ops_per_tx = 6;
      wl.write_fraction = 0.4;
      wl.seed = 300 + static_cast<std::uint64_t>(c);
      WorkloadGenerator gen(wl);
      Rng rng(777 + static_cast<std::uint64_t>(c));
      const auto process = static_cast<ProcessId>(c + 1);
      for (int i = 0; i < 200; ++i) {
        const bool critical = rng.next_bool(0.1);
        const CommitResult r =
            execute_tx(db.spi(), gen.next_tx(), process, critical);
        if (critical) {
          (r.committed() ? stats.critical_commits : stats.critical_aborts)
              .fetch_add(1);
        } else {
          (r.committed() ? stats.normal_commits : stats.normal_aborts)
              .fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

double pct(std::uint64_t aborts, std::uint64_t commits) {
  const auto total = aborts + commits;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(aborts) /
                                static_cast<double>(total);
}

}  // namespace

int main() {
  using mvtl::Table;

  Table table({"algorithm", "critical abort%", "normal abort%"});
  for (const bool use_prio : {true, false}) {
    Db db = Options()
                .policy(use_prio ? Policy::prio() : Policy::to())
                .clock(std::make_shared<LogicalClock>(1'000'000))
                .lock_timeout(std::chrono::microseconds{250'000})
                .open();
    ClassStats stats;
    run_mixed(db, stats);
    table.add_row(
        {use_prio ? "MVTL-Prio" : "MVTL-TO (no priorities)",
         fmt_double(pct(stats.critical_aborts, stats.critical_commits), 2),
         fmt_double(pct(stats.normal_aborts, stats.normal_commits), 2)});
  }

  std::printf("=== Priority ablation: abort rate by transaction class ===\n");
  table.print();
  std::printf(
      "\nShape check: MVTL-Prio cuts the critical class's abort rate well "
      "below the normal class's (Theorem 3: normals can never abort a "
      "critical; residual critical aborts are lock-wait timeouts under "
      "sustained reader churn), while MVTL-TO treats both classes alike.\n");
  return 0;
}
